"""Wire-size sanity for every KV message type.

Message sizes drive all network costs in the evaluation, so each type's
``wire_bytes`` must scale with the payload it claims to carry.
"""

import pytest

from repro.core import CodedShare, rs_paxos
from repro.erasure import CodingConfig
from repro.kvstore import (
    CatchUp,
    CatchUpEntry,
    CatchUpReply,
    ClientDelete,
    ClientGet,
    ClientPut,
    Command,
    ConfirmPlacement,
    FetchShare,
    GetOk,
    Heartbeat,
    HeartbeatAck,
    InstallShare,
    NewView,
    NotFound,
    NotReady,
    PlacementGaps,
    PutOk,
    Redirect,
    ShareReply,
)

CFG = CodingConfig(3, 5)


def share(size=3000):
    return CodedShare("v", 0, CFG, size)


class TestWireBytes:
    def test_put_scales_with_value(self):
        small = ClientPut("k", 100).wire_bytes
        large = ClientPut("k", 1_000_000).wire_bytes
        assert large - small == 1_000_000 - 100

    def test_get_reply_scales_with_value(self):
        assert GetOk("k", 5000).wire_bytes - GetOk("k", 0).wire_bytes == 5000

    def test_control_messages_are_small(self):
        for msg in (
            ClientGet("key"), ClientDelete("key"), PutOk("key"),
            NotFound("key"), Redirect("P1"), Redirect(None), NotReady(),
            Heartbeat(0), HeartbeatAck(1), FetchShare(0, 1, "v"),
            CatchUp(0, 0),
        ):
            assert msg.wire_bytes < 256, type(msg).__name__

    def test_share_reply_scales_with_share(self):
        full = ShareReply(share(3000)).wire_bytes
        empty = ShareReply(None).wire_bytes
        assert full - empty == CFG.share_size(3000)

    def test_install_share_scales(self):
        assert InstallShare(0, 1, "v", share(3000), None).wire_bytes > \
               InstallShare(0, 1, "v", share(30), None).wire_bytes

    def test_catch_up_reply_sums_entries(self):
        entries = tuple(
            CatchUpEntry(i, f"v{i}", 3000, Command("put", f"k{i}"), share(3000))
            for i in range(4)
        )
        reply = CatchUpReply(0, entries)
        single = CatchUpReply(0, entries[:1])
        assert reply.wire_bytes - single.wire_bytes == 3 * (
            32 + CFG.share_size(3000)
        )

    def test_placement_messages_scale_with_instance_count(self):
        many = ConfirmPlacement(0, 100, tuple(range(50))).wire_bytes
        few = ConfirmPlacement(0, 100, (1,)).wire_bytes
        assert many > few
        assert PlacementGaps(0, tuple(range(10))).wire_bytes > \
               PlacementGaps(0, ()).wire_bytes

    def test_new_view_scales_with_members(self):
        cfg = rs_paxos(5, 1)
        big = NewView(1, tuple(range(5)), cfg).wire_bytes
        small = NewView(1, (0, 1, 2), rs_paxos(3, 1)).wire_bytes
        assert big > small
