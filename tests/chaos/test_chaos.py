"""Chaos explorer tests: schedule generation, episodes, and teeth.

The teeth test is the important one: a checker that never fires is
worthless, so we verify a deliberately weakened quorum config
(Q1 + Q2 = N + k - 1) *is* caught.
"""

import json

import pytest

from repro.chaos import (
    SHORT_SPEC,
    ChaosRunner,
    ChaosSpec,
    ScheduleSpec,
    generate_schedule,
)
from repro.core import QuorumSystem, UnsafeProtocolConfig
from repro.erasure import CodingConfig
from repro.sim import Simulator

SERVERS = [f"S{i}" for i in range(5)]

#: Even shorter than SHORT_SPEC: unit-test scale (~0.5 s wall clock).
TINY_SPEC = ChaosSpec(
    schedule=ScheduleSpec(fault_window=4.0, mean_gap=0.8),
    settle=3.0,
    num_clients=2,
    num_keys=4,
)


def gen(seed=0, spec=None, max_crashed=1):
    sim = Simulator(seed=seed)
    return generate_schedule(
        sim.rng.stream("chaos.schedule"),
        spec or ScheduleSpec(),
        SERVERS,
        max_crashed=max_crashed,
    )


class TestScheduleGenerator:
    def test_deterministic_per_seed(self):
        assert gen(seed=3) == gen(seed=3)
        assert gen(seed=3) != gen(seed=4)

    def test_sorted_and_inside_window(self):
        spec = ScheduleSpec()
        events = gen(seed=1, spec=spec)
        assert events == sorted(events, key=lambda e: (e.t, e.kind))
        assert all(spec.warmup <= e.t <= spec.end for e in events)

    def test_every_fault_is_paired_with_repair(self):
        # torn-write is a crash variant, so it shares the recover pool;
        # a wipe pairs with its rejoin; bit-rot and scrub are unpaired
        # by design (the background scrubber is bit-rot's repair path).
        for seed in range(10):
            events = gen(seed=seed)
            counts = {}
            for e in events:
                counts[e.kind] = counts.get(e.kind, 0) + 1
            down = counts.get("crash", 0) + counts.get("torn-write", 0)
            assert down == counts.get("recover", 0)
            assert counts.get("wipe", 0) == counts.get("rejoin", 0)
            # Every partition-ish episode pairs with a scoped heal;
            # flaps carry their final heal inside the one event.
            cuts = (
                counts.get("partition", 0)
                + counts.get("partial-partition", 0)
                + counts.get("asym-partition", 0)
            )
            assert cuts == counts.get("heal", 0)
            assert counts.get("slow-disk", 0) == counts.get("fix-disk", 0)
            assert counts.get("slow-node", 0) == counts.get("fix-node", 0)

    def test_respects_max_crashed(self):
        for seed in range(10):
            events = gen(seed=seed, max_crashed=2)
            down = set()
            order = sorted(
                events, key=lambda e: (e.t, e.kind not in ("recover", "rejoin"))
            )
            for e in order:
                if e.kind in ("crash", "wipe"):
                    down.add(e.arg)
                    assert len(down) <= 2
                elif e.kind == "torn-write":
                    host, frac = e.arg
                    down.add(host)
                    assert len(down) <= 2
                    assert 0.0 <= frac <= 1.0
                elif e.kind in ("recover", "rejoin"):
                    down.discard(e.arg)

    def test_storage_kinds_appear(self):
        kinds = set()
        for seed in range(10):
            kinds |= {e.kind for e in gen(seed=seed)}
        assert {"torn-write", "bit-rot", "scrub"} <= kinds

    def test_storage_weights_zero_disables(self):
        spec = ScheduleSpec(storage_weights=(0.0, 0.0, 0.0))
        for seed in range(5):
            kinds = {e.kind for e in gen(seed=seed, spec=spec)}
            assert not kinds & {"torn-write", "bit-rot", "scrub"}

    def test_wipe_kind_appears(self):
        kinds = set()
        for seed in range(10):
            kinds |= {e.kind for e in gen(seed=seed)}
        assert {"wipe", "rejoin"} <= kinds

    def test_wipe_weight_zero_disables(self):
        spec = ScheduleSpec(wipe_weight=0.0)
        for seed in range(5):
            kinds = {e.kind for e in gen(seed=seed, spec=spec)}
            assert not kinds & {"wipe", "rejoin"}

    def test_overload_and_slow_node_kinds_appear(self):
        kinds = set()
        for seed in range(10):
            kinds |= {e.kind for e in gen(seed=seed)}
        assert {"overload", "slow-node", "fix-node"} <= kinds

    def test_overload_weight_zero_disables(self):
        spec = ScheduleSpec(overload_weight=0.0)
        for seed in range(5):
            kinds = {e.kind for e in gen(seed=seed, spec=spec)}
            assert "overload" not in kinds

    def test_slow_node_weight_zero_disables(self):
        spec = ScheduleSpec(slow_node_weight=0.0)
        for seed in range(5):
            kinds = {e.kind for e in gen(seed=seed, spec=spec)}
            assert not kinds & {"slow-node", "fix-node"}

    def test_zero_weight_new_kinds_preserve_rng_draws(self):
        # A zero-weighted kind must consume *no* RNG: with the weight
        # at zero, every other parameter of the disabled kind is inert
        # and the rest of the schedule's draws line up event-for-event.
        baseline = ScheduleSpec(overload_weight=0.0, slow_node_weight=0.0)
        perturbed = ScheduleSpec(
            overload_weight=0.0, slow_node_weight=0.0,
            overload_dur=(9.0, 9.0), overload_factor=(99.0, 99.0),
            node_slow_factor=(99.0, 99.0), node_slow_dur=(9.0, 9.0),
        )
        for seed in range(5):
            assert gen(seed=seed, spec=baseline) == \
                gen(seed=seed, spec=perturbed)

    def test_slow_node_never_stacks_on_slow_disk_or_itself(self):
        # At most one gray episode per host at a time, and never on a
        # host whose disk is already slowed — overlapping slowdowns
        # would repair each other on fix.
        for seed in range(10):
            events = sorted(gen(seed=seed), key=lambda e: e.t)
            slowed = set()
            gray = set()
            for e in events:
                if e.kind == "slow-disk":
                    host, _ = e.arg
                    assert host not in gray
                    slowed.add(host)
                elif e.kind == "fix-disk":
                    slowed.discard(e.arg)
                elif e.kind == "slow-node":
                    host, factor = e.arg
                    assert host not in gray and host not in slowed
                    assert factor >= 1.0
                    gray.add(host)
                elif e.kind == "fix-node":
                    assert e.arg in gray
                    gray.discard(e.arg)


class TestEpisodes:
    @pytest.mark.parametrize("protocol", ["rs-paxos", "classic"])
    def test_clean_episode(self, protocol):
        runner = ChaosRunner(protocol=protocol, spec=TINY_SPEC,
                             bundle_dir=None)
        result, _ = runner.run_episode(0)
        assert result.ok, (result.violations, result.lin_failures)
        assert result.ops_total > 0
        assert result.ops_completed == result.ops_total
        assert result.schedule  # faults actually happened

    def test_episode_is_reproducible(self):
        runner = ChaosRunner(protocol="rs-paxos", spec=TINY_SPEC,
                             bundle_dir=None)
        a, _ = runner.run_episode(1)
        b, _ = runner.run_episode(1)
        assert a.to_jsonable() == b.to_jsonable()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ChaosRunner(protocol="raft")

    def test_tenant_tagged_episode(self):
        # Tenant tags + DRR weights must survive a faulty episode and
        # surface per-tenant shed/backoff accounting in the result.
        spec = ChaosSpec(
            schedule=ScheduleSpec(fault_window=4.0, mean_gap=0.8),
            settle=3.0, num_clients=2, num_keys=4,
            tenants=("gold", "bronze"),
            tenant_weights=(("gold", 3.0), ("bronze", 1.0)),
        )
        runner = ChaosRunner(protocol="rs-paxos", spec=spec,
                             bundle_dir=None)
        result, _ = runner.run_episode(0)
        assert result.ok, (result.violations, result.lin_failures)
        assert set(result.busy_by_tenant) == {"gold", "bronze"}
        for agg in result.busy_by_tenant.values():
            assert agg["busy_count"] >= 0
        js = result.to_jsonable()
        assert js["shed_by_tenant"] == result.shed_by_tenant
        assert js["busy_by_tenant"] == result.busy_by_tenant
        # Round-robin tag assignment is part of the episode's identity.
        again, _ = runner.run_episode(0)
        assert again.to_jsonable() == js

    def test_wipe_episode_rebuilds_clean(self):
        # A schedule biased hard toward wipes: the wiped server must
        # rebuild (snapshot + tail) and the episode still come out
        # linearizable with every invariant — including bounded-wal —
        # intact.
        spec = ChaosSpec(
            schedule=ScheduleSpec(
                fault_window=5.0, mean_gap=0.8,
                weights=(1.0, 1.0, 1.0, 1.0),
                storage_weights=(0.5, 0.5, 0.5),
                wipe_weight=8.0,
            ),
            settle=4.0, num_clients=2, num_keys=4,
        )
        runner = ChaosRunner(protocol="rs-paxos", spec=spec, bundle_dir=None)
        saw_wipe = False
        for seed in range(6):
            result, _ = runner.run_episode(seed)
            assert result.ok, (result.violations, result.lin_failures)
            if any(e.kind == "wipe" for e in result.schedule):
                saw_wipe = True
                assert result.rebuild_bytes > 0
                break
        assert saw_wipe, "no seed in range produced a wipe"


class TestTeeth:
    """A weakened config (Q1 + Q2 >= N + k - 1 only) must be caught."""

    UNSAFE = UnsafeProtocolConfig(QuorumSystem(5, 3, 4), CodingConfig(3, 5))

    def test_every_episode_flags_the_config(self):
        runner = ChaosRunner(config=self.UNSAFE, protocol="unsafe",
                             spec=TINY_SPEC, bundle_dir=None)
        result, _ = runner.run_episode(0)
        assert not result.ok
        assert any(v["kind"] == "config" for v in result.violations)

    def test_chaos_produces_a_live_violation(self):
        # Beyond the static probe: some seed makes the weakening bite
        # at runtime (split-brain chooses two values, or a chosen value
        # becomes undecodable). Deterministic sim => stable outcome.
        # Storage faults are disabled to keep the schedule crash- and
        # partition-dense — that is the mix the weakened quorums are
        # vulnerable to.
        spec = ChaosSpec(
            schedule=ScheduleSpec(
                fault_window=6.0, mean_gap=1.0,
                storage_weights=(0.0, 0.0, 0.0),
                overload_weight=0.0, slow_node_weight=0.0,
            ),
            settle=4.0,
        )
        runner = ChaosRunner(config=self.UNSAFE, protocol="unsafe",
                             spec=spec, bundle_dir=None)
        kinds = set()
        for seed in range(8):
            result, _ = runner.run_episode(seed)
            kinds |= {v["kind"] for v in result.violations}
            if kinds - {"config"}:
                break
        assert kinds - {"config"}, "weakened quorums never caused harm"


class TestReproBundle:
    def test_failure_writes_bundle(self, tmp_path):
        runner = ChaosRunner(
            config=TestTeeth.UNSAFE, protocol="unsafe",
            spec=TINY_SPEC, bundle_dir=str(tmp_path),
        )
        results, failures = runner.run(1)
        assert len(failures) == 1
        path = failures[0].bundle_path
        assert path is not None
        with open(path) as fh:
            bundle = json.load(fh)
        assert bundle["seed"] == 0
        assert bundle["protocol"] == "unsafe"
        assert bundle["schedule"]
        assert "run_episode(0)" in bundle["replay"]
        assert bundle["config"] == {"n": 5, "q_r": 3, "q_w": 4, "x": 3}
