"""Batch atomicity under faults.

A closed batch is one Paxos value: either the instance is chosen and
every command in the frame applies (and is acked), or the instance
never forms and *no* command is acked. The sharpest window is between
batch close and the Accept fan-out — the batch exists on the leader
only. Crashing there must lose the whole batch, never a prefix.
"""

from __future__ import annotations

from repro.chaos import ChaosRunner, ChaosSpec
from repro.chaos.schedule import ScheduleSpec
from repro.check import check_durable_integrity
from repro.core import classic_paxos, rs_paxos
from repro.kvstore import build_cluster

#: Short episodes, as in test_chaos.py, plus batching turned on.
BATCH_SPEC = ChaosSpec(
    schedule=ScheduleSpec(fault_window=4.0, mean_gap=0.8),
    settle=3.0,
    num_clients=2,
    num_keys=4,
    batch_max_commands=4,
    batch_linger=0.0005,
)


def _crash_between_close_and_accept(config, seed: int):
    """Build a cluster where the leader crashes the moment the first
    batch tries to send its Accepts (i.e. after batch close + encode,
    before any Accept leaves the host)."""
    c = build_cluster(
        config,
        num_clients=4,
        num_groups=1,
        seed=seed,
        batch_max_commands=4,
        batch_linger=0.0005,
        client_timeout=0.25,
    )
    c.start()
    c.run(until=1.0)
    leader = c.leader()
    assert leader is not None
    node = leader.groups[0]
    fired = {"n": 0}

    def boom(instance, ballot, value) -> None:
        fired["n"] += 1
        leader.crash()  # nothing durable, nothing on the wire

    node._send_accepts = boom
    return c, leader, fired


def test_leader_crash_between_batch_close_and_accept_loses_whole_batch():
    c, crashed, fired = _crash_between_close_and_accept(rs_paxos(5, 1), 13)
    results: list[bool] = []
    for i, cl in enumerate(c.clients):
        cl.max_attempts = 1  # no retries: an ack means THIS attempt won
        cl.put(f"atom-{i}", 64 + i, on_done=results.append)
    c.run(until=c.sim.now + 3.0)

    assert fired["n"] == 1, "the batch closed into exactly one proposal"
    # Atomicity, failure half: no command of the doomed batch was acked.
    assert results == [False, False, False, False]
    # ... and no replica holds any of its keys, not even partially.
    for s in c.servers:
        for i in range(4):
            assert s.store.get_entry(f"atom-{i}") is None
    # The cluster failed over and its durable state is still coherent.
    assert c.leader() is not None and c.leader() is not crashed
    assert check_durable_integrity(c.servers) == []


def test_reissue_after_crashed_batch_commits_all_or_nothing():
    """Same crash; the clients' ops all fail (the batch died whole),
    then reissuing them against the new leader commits them all —
    acks and state agree exactly, before and after."""
    c, crashed, fired = _crash_between_close_and_accept(rs_paxos(5, 1), 17)
    first: list[bool] = []
    for i, cl in enumerate(c.clients):
        cl.max_attempts = 1
        cl.put(f"retry-{i}", 64 + i, on_done=first.append)
    c.run(until=c.sim.now + 4.0)  # failover window
    assert fired["n"] == 1
    assert first == [False, False, False, False]
    assert c.leader() is not None and c.leader() is not crashed

    second: list[bool] = []
    for i, cl in enumerate(c.clients):
        cl.max_attempts = 6
        cl.put(f"retry-{i}", 64 + i, on_done=second.append)
    c.run(until=c.sim.now + 3.0)
    assert second == [True, True, True, True]
    leader = c.leader()
    for i in range(4):
        assert leader.store.get(f"retry-{i}").size == 64 + i
    assert check_durable_integrity(c.servers) == []


def test_chaos_episodes_with_batching_rs_paxos():
    runner = ChaosRunner(protocol="rs-paxos", spec=BATCH_SPEC,
                         bundle_dir=None)
    for seed in (0, 1):
        result, _ = runner.run_episode(seed)
        assert result.ok, (seed, result.violations, result.lin_failures)
        assert result.ops_completed > 0


def test_chaos_episode_with_batching_classic():
    runner = ChaosRunner(config=classic_paxos(5), protocol="classic",
                         spec=BATCH_SPEC, bundle_dir=None)
    result, _ = runner.run_episode(0)
    assert result.ok, (result.violations, result.lin_failures)
