"""Chaos matrix: shard migrations must survive crashes and partitions.

The cutover window — prepare ShardCmd, snapshot-style copy stream,
dual-write fence, commit — is where a dynamic sharding design loses
data if anything is off.  This matrix drives exactly those faults:

- leader crash at varying points inside the copy stream,
- leader crash inside the dual-write fence while writes race the copy,
- a partial partition isolating the leader from the config-group
  quorum mid-migration,
- randomized ChaosRunner episodes mixing shard faults with the full
  fault palette across seeds.

Every scenario must end with the migration resolved, no key lost or
duplicated, and the linearizability + shard-coverage + invariant
probes clean.
"""

import dataclasses

import pytest

from repro.chaos import SHORT_SPEC, ChaosRunner, ChaosSpec, ScheduleSpec
from repro.check import check_cluster, check_shard_coverage
from repro.core import rs_paxos
from repro.kvstore import build_cluster

CONFIG = rs_paxos(5, 1)


def make(seed=1, **kw):
    cluster = build_cluster(
        CONFIG, seed=seed, dynamic_shards=True, num_groups=3, **kw
    )
    cluster.start()
    cluster.run(until=1.0)
    return cluster


def seed_keys(cluster, t, n=8):
    pairs = [(f"{ch}{i}", 100 + i) for i, ch in enumerate("abcdmnpz"[:n])]
    for key, size in pairs:
        cluster.clients[0].put(key, size, on_done=lambda ok: None)
        t += 0.3
        cluster.run(until=t)
    return dict(pairs), t


def read_back(cluster, keys, t):
    got = {}
    for k in keys:
        cluster.clients[0].get(
            k, on_done=lambda ok, size, k=k: got.setdefault(k, (ok, size))
        )
        t += 0.3
        cluster.run(until=t)
    return got, t


def assert_settled(cluster, truth, t):
    """Migration resolved, data intact, every probe clean."""
    up = [s for s in cluster.servers if s.up]
    assert all(s.shard_map.migrating is None for s in up)
    got, t = read_back(cluster, sorted(truth), t)
    assert got == {k: (True, sz) for k, sz in truth.items()}
    assert check_shard_coverage(cluster.servers) == []
    assert check_cluster(cluster.servers, CONFIG) == []
    return t


class TestCrashDuringCopy:
    @pytest.mark.parametrize("delay", [0.02, 0.1, 0.3])
    def test_leader_crash_mid_copy_stream(self, delay):
        """Crash the migration driver at several depths into the copy
        stream; the successor leader must resume from the replicated
        migrating flag and finish without losing a key."""
        c = make(seed=3)
        truth, t = seed_keys(c, 1.0)
        ldr = c.leader()
        assert ldr.force_split("m")
        c.run(until=t + delay)
        ldr.crash()
        c.sim.call_after(1.0, ldr.recover)
        c.run(until=t + 10.0)
        assert_settled(c, truth, t + 10.0)

    def test_repeated_crashes_same_migration(self):
        """Two driver crashes inside one migration: resume must be
        idempotent (era-conditional copies, no duplicated keys)."""
        c = make(seed=5)
        truth, t = seed_keys(c, 1.0)
        assert c.leader().force_split("m")
        for _ in range(2):
            c.run(until=c.sim.now + 0.15)
            ldr = c.leader()
            if ldr is not None and ldr.shard_map.migrating is not None:
                ldr.crash()
                c.sim.call_after(1.0, ldr.recover)
        c.run(until=t + 14.0)
        assert_settled(c, truth, t + 14.0)


class TestCrashInsideFence:
    def test_writes_racing_fence_survive_leader_crash(self):
        """Writes landing in the migrating range (dual-write fence
        active) while the leader dies: every acked write must be
        readable afterwards, unacked ones must be old-or-new, never
        garbage and never duplicated."""
        c = make(seed=7)
        truth, t = seed_keys(c, 1.0)
        assert c.leader().force_split("m")
        acked = {}
        racers = [(k, sz + 800) for k, sz in truth.items()]
        for key, size in racers:
            c.clients[0].put(
                key, size,
                on_done=lambda ok, key=key, size=size: (
                    acked.__setitem__(key, size) if ok else None
                ),
            )
            t += 0.05
            c.run(until=t)
        ldr = c.leader()
        if ldr is not None:
            ldr.crash()
            c.sim.call_after(1.0, ldr.recover)
        c.run(until=t + 12.0)
        t += 12.0
        up = [s for s in c.servers if s.up]
        assert all(s.shard_map.migrating is None for s in up)
        got, t = read_back(c, sorted(truth), t)
        for k, old in truth.items():
            ok, size = got[k]
            assert ok
            if k in acked:
                assert size == acked[k]
            else:
                assert size in (old, old + 800)
        assert check_shard_coverage(c.servers) == []
        assert check_cluster(c.servers, CONFIG) == []


class TestConfigGroupPartition:
    def test_partition_isolating_config_quorum_mid_migration(self):
        """Cut the leader away from every peer mid-migration: it can no
        longer commit through the config group.  After the heal the
        migration must still resolve exactly once."""
        c = make(seed=9)
        truth, t = seed_keys(c, 1.0)
        ldr = c.leader()
        assert ldr.force_split("m")
        c.run(until=t + 0.1)
        others = [s.name for s in c.servers if s is not ldr]
        c.net.partition([ldr.name], others, token="cfg-cut")
        c.run(until=c.sim.now + 2.0)
        c.net.heal("cfg-cut")
        c.run(until=t + 14.0)
        assert_settled(c, truth, t + 14.0)


class TestRandomizedMatrix:
    def test_shard_faults_under_full_palette(self):
        """ChaosRunner episodes with split / merge / crash-migration
        faults enabled on top of the regular fault palette: every seed
        must pass linearizability and all invariant probes."""
        sched = dataclasses.replace(
            SHORT_SPEC.schedule,
            shard_weights=(1.0, 0.5, 1.0),
            shard_gap=1.5,
        )
        spec = dataclasses.replace(
            SHORT_SPEC,
            schedule=sched,
            dynamic_shards=True,
            rebalance_interval=0.5,
        )
        runner = ChaosRunner(spec=spec, bundle_dir=None)
        migrations = 0
        for seed in range(4):
            res, _ = runner.run_episode(seed=seed)
            assert res.ok, (seed, res.violations, res.lin_failures)
            migrations += res.migrations_completed
        assert migrations >= 1  # the matrix actually exercised cutovers
