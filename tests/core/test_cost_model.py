"""Cross-validation: the analytic cost model vs the simulated system.

The paper's argument is quantitative — accept-phase bytes shrink by
1/X — so the simulation must agree with the closed-form model of
:mod:`repro.core.quorum` within protocol overheads.
"""

import pytest

from repro.core import (
    Value,
    classic_paxos,
    disk_bytes_per_write,
    fresh_value_id,
    network_bytes_per_write,
    rs_paxos,
)
from repro.net import HEADER_BYTES

from .harness import elect, make_group


def run_one_write(config, size, seed=0):
    group = make_group(config, seed=seed)
    assert elect(group, 0)
    net0 = group.net.total_bytes_sent()
    disk0 = sum(n.wal.disk.bytes_written for n in group.nodes)
    decided = []
    group.node(0).propose(
        Value(fresh_value_id(0), size),
        lambda i, v: decided.append(i),
    )
    group.sim.run(until=group.sim.now + 3.0)
    assert decided
    return (
        group.net.total_bytes_sent() - net0,
        sum(n.wal.disk.bytes_written for n in group.nodes) - disk0,
    )


class TestNetworkModel:
    @pytest.mark.parametrize("config_fn,size", [
        (lambda: classic_paxos(5), 300_000),
        (lambda: rs_paxos(5, 1), 300_000),
        (lambda: rs_paxos(7, 2), 210_000),
    ])
    def test_simulated_accept_bytes_match_model(self, config_fn, size):
        config = config_fn()
        net_bytes, _ = run_one_write(config, size)
        predicted = network_bytes_per_write(config.n, size, config.coding)
        # Everything beyond accept payloads (replies, commits, headers)
        # is bounded protocol overhead.
        overhead = net_bytes - predicted
        assert overhead >= 0
        assert overhead < 40 * (HEADER_BYTES + 200) + 0.01 * predicted

    def test_rs_saving_fraction(self):
        px, _ = run_one_write(classic_paxos(5), 600_000)
        rs, _ = run_one_write(rs_paxos(5, 1), 600_000)
        # §1: "RS-Paxos can save over 50% of network transmission".
        assert rs < px * 0.5


class TestDiskModel:
    @pytest.mark.parametrize("config_fn,size", [
        (lambda: classic_paxos(5), 300_000),
        (lambda: rs_paxos(5, 1), 300_000),
    ])
    def test_simulated_wal_bytes_match_model(self, config_fn, size):
        config = config_fn()
        _, disk_bytes = run_one_write(config, size)
        predicted = disk_bytes_per_write(config.n, size, config.coding)
        overhead = disk_bytes - predicted
        assert overhead >= 0
        assert overhead < 5000 + 0.01 * predicted

    def test_rs_disk_saving(self):
        _, px = run_one_write(classic_paxos(5), 600_000)
        _, rs = run_one_write(rs_paxos(5, 1), 600_000)
        assert rs < px * 0.5


class TestRedundancyAccounting:
    def test_stored_redundancy_model(self):
        # Leader full copy + (N-1) shares of size/X:
        # redundancy = 1 + (N-1)/X = 1 + 4/3 ~ 2.33 for θ(3,5).
        config = rs_paxos(5, 1)
        share = config.coding.share_size(3000)
        leader_total = 3000 + 4 * share
        assert leader_total / 3000 == pytest.approx(2.33, abs=0.01)
        # Versus 5.0 for full replication: > 50% storage saving.
        assert leader_total < 5 * 3000 * 0.5
