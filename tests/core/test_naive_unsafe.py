"""The §2.3 / Figure 2 counterexample: naive EC+Paxos is NOT safe.

Scenario (paper's Figure 2), N = 5, θ(3, 5) with *majority* quorums:

1. P1 passes phase 1 and sends accept requests carrying coded shares.
   Only P1, P2, P3 receive them — 3 acks = a majority, so the value v
   is legally **chosen**.
2. P3 crashes.
3. P5 runs phase 1. Among its promises at most two coded shares of v
   are visible (P1, P2) — fewer than the 3 needed to reconstruct — so
   P5 cannot recover v, proposes its own value, and gets it chosen.

Two different values are now decided for the same instance: a
consistency violation, which :class:`ConsistencyViolation` surfaces.

The mirrored test shows RS-Paxos (QW = QR = 4, same θ(3, 5)) survives
the identical schedule: with only 3 acks the value was never chosen in
step 1, so the later no-op/own-value choice is allowed, and nothing is
ever decided twice.
"""

import pytest

from repro.core import (
    ConsistencyViolation,
    Value,
    naive_ec_paxos,
    rs_paxos,
)

from .harness import elect, make_group


def scripted_fig2_schedule(config):
    """Drive the exact Figure 2 schedule against ``config``.

    Returns the group after the second leader has taken over (the
    ConsistencyViolation, if any, is raised during sim.run inside).
    """
    group = make_group(config)
    sim, net = group.sim, group.net
    assert elect(group, 0)  # P1 is the initial proposer

    # Step 1: accepts reach only P1, P2, P3.
    net.partition(["P1"], ["P4", "P5"])
    decided = []
    group.node(0).propose(
        Value("v-first", 900, b"A" * 900),
        lambda inst, v: decided.append((inst, v.value_id)),
    )
    sim.run(until=sim.now + 2.0)

    # Step 2: P3 crashes (its coded share is gone).
    group.crash(2)
    net.heal()

    # Step 3: P5 tries to take over and propose.
    assert elect(group, 4, until=10.0)
    sim.run(until=sim.now + 5.0)
    return group, decided


class TestNaiveIsUnsafe:
    def test_construction_requires_opt_in(self):
        with pytest.raises(ValueError):
            naive_ec_paxos(5)

    def test_naive_config_is_flagged_unsafe(self):
        cfg = naive_ec_paxos(5, allow_unsafe=True)
        assert not cfg.is_safe
        assert cfg.x == 3  # θ(3,5)
        assert cfg.q_r == cfg.q_w == 3  # majorities

    def test_figure2_schedule_violates_consistency(self):
        """The naive combination decides two different values."""
        with pytest.raises(ConsistencyViolation):
            scripted_fig2_schedule(naive_ec_paxos(5, allow_unsafe=True))

    def test_value_was_chosen_before_violation(self):
        """Sanity: under the naive config the first value really is
        chosen (3 acks = majority) before P3 crashes — the violation is
        not an artifact of an unchosen value."""
        group = make_group(naive_ec_paxos(5, allow_unsafe=True))
        assert elect(group, 0)
        group.net.partition(["P1"], ["P4", "P5"])
        decided = []
        group.node(0).propose(
            Value("v-first", 900, b"A" * 900),
            lambda inst, v: decided.append(v.value_id),
        )
        group.sim.run(until=group.sim.now + 2.0)
        assert decided == ["v-first"]


class TestRSPaxosSurvivesSameSchedule:
    def test_figure2_schedule_is_safe(self):
        """RS-Paxos on the identical schedule: no double decision."""
        group, decided = scripted_fig2_schedule(rs_paxos(5, 1))
        # The first value was never chosen (3 < QW = 4 acks)...
        assert decided == []
        # ...so every node that decided instance 0 decided the same
        # (free-choice) value, and no ConsistencyViolation fired.
        value_ids = {
            n.chosen[0].value_id for n in group.nodes if 0 in n.chosen
        }
        assert len(value_ids) == 1

    def test_rs_paxos_refuses_unsafe_custom_config(self):
        from repro.core import rs_paxos_custom

        with pytest.raises(ValueError):
            rs_paxos_custom(5, 3, 3, x=3)  # naive parameters
