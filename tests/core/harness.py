"""Shared mini-cluster harness for protocol-level integration tests."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import PaxosNode
from repro.net import LinkSpec, Network, build_network, server_names
from repro.rpc import RpcEndpoint
from repro.sim import Simulator, Tracer
from repro.storage import SSD, Disk, DiskSpec, WriteAheadLog


@dataclass
class Group:
    sim: Simulator
    net: Network
    nodes: list[PaxosNode]
    tracer: Tracer

    def node(self, i: int) -> PaxosNode:
        return self.nodes[i]

    def crash(self, i: int) -> None:
        """Crash node i: host down + volatile state lost."""
        self.net.crash_host(self.nodes[i].endpoint.name)
        self.nodes[i].crash()

    def recover(self, i: int) -> None:
        self.net.recover_host(self.nodes[i].endpoint.name)
        self.nodes[i].recover()


def make_group(
    config,
    link: LinkSpec | None = None,
    disk: DiskSpec = SSD,
    seed: int = 0,
    rpc_timeout: float = 0.1,
    commit_interval: float = 0.001,
) -> Group:
    """Build an N-node Paxos group over a simulated LAN."""
    n = config.n
    sim = Simulator(seed=seed)
    tracer = Tracer()
    names = server_names(n)
    net = build_network(sim, names, link or LinkSpec(delay_s=0.001), tracer)
    peers = dict(enumerate(names))
    nodes = []
    for i, name in enumerate(names):
        endpoint = RpcEndpoint(sim, net, name)
        wal = WriteAheadLog(sim, Disk(sim, disk, f"{name}.disk"), name=f"{name}.wal")
        nodes.append(
            PaxosNode(
                sim, endpoint, wal, config,
                node_id=i, peers=peers,
                rpc_timeout=rpc_timeout,
                commit_interval=commit_interval,
                tracer=tracer,
            )
        )
    return Group(sim, net, nodes, tracer)


def elect(group: Group, i: int, until: float | None = 5.0) -> bool:
    """Drive node i through become_leader; returns success."""
    outcome: list[bool] = []
    group.nodes[i].become_leader(lambda ok: outcome.append(ok))
    group.sim.run(until=group.sim.now + (until or 5.0))
    return bool(outcome and outcome[0])
