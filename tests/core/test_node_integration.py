"""Integration tests: full PaxosNode groups over the simulated network."""

import pytest

from repro.core import (
    Value,
    classic_paxos,
    fresh_value_id,
    is_noop,
    rs_paxos,
)
from repro.net import LinkSpec

from .harness import elect, make_group


def val(data: bytes) -> Value:
    return Value(fresh_value_id(0), len(data), data)


def propose_and_run(group, leader, value, until=5.0):
    decided = []
    leader.propose(value, lambda inst, v: decided.append((inst, v)))
    group.sim.run(until=group.sim.now + until)
    return decided


class TestClassicPaxos:
    def test_single_value_chosen(self):
        group = make_group(classic_paxos(5))
        assert elect(group, 0)
        leader = group.node(0)
        decided = propose_and_run(group, leader, val(b"hello"))
        assert len(decided) == 1
        inst, v = decided[0]
        assert v.data == b"hello"
        assert leader.chosen[inst].value.data == b"hello"

    def test_followers_learn_via_commit(self):
        group = make_group(classic_paxos(5))
        assert elect(group, 0)
        decided = propose_and_run(group, group.node(0), val(b"xyz"))
        inst = decided[0][0]
        for node in group.nodes:
            assert inst in node.chosen
            assert node.chosen[inst].value_id == decided[0][1].value_id

    def test_pipelined_proposals_ordered(self):
        group = make_group(classic_paxos(3))
        assert elect(group, 0)
        leader = group.node(0)
        decided = []
        for i in range(10):
            leader.propose(
                val(f"value-{i}".encode()),
                lambda inst, v: decided.append((inst, v.data)),
            )
        group.sim.run(until=group.sim.now + 5.0)
        assert len(decided) == 10
        instances = [inst for inst, _ in decided]
        assert instances == sorted(instances)
        # Apply order at every node is instance order.
        for node in group.nodes:
            assert node.apply_cursor == max(instances) + 1

    def test_tolerates_f_crashes(self):
        group = make_group(classic_paxos(5))
        assert elect(group, 0)
        group.crash(3)
        group.crash(4)  # F = 2 for majority Paxos over 5
        decided = propose_and_run(group, group.node(0), val(b"still works"))
        assert len(decided) == 1

    def test_blocks_beyond_f_crashes(self):
        group = make_group(classic_paxos(5))
        assert elect(group, 0)
        for i in (2, 3, 4):
            group.crash(i)
        decided = propose_and_run(group, group.node(0), val(b"no quorum"), until=3.0)
        assert decided == []

    def test_propose_without_leadership_raises(self):
        group = make_group(classic_paxos(3))
        with pytest.raises(RuntimeError):
            group.node(0).propose(val(b"x"), lambda i, v: None)


class TestRSPaxos:
    def test_single_value_chosen_and_decoded(self):
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        decided = propose_and_run(group, group.node(0), val(b"A" * 999))
        assert len(decided) == 1
        assert decided[0][1].data == b"A" * 999

    def test_followers_store_coded_shares_only(self):
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        payload = b"B" * 900
        decided = propose_and_run(group, group.node(0), val(payload))
        inst = decided[0][0]
        for i, node in enumerate(group.nodes):
            share = node.acceptor.accepted_share(inst)
            assert share is not None
            assert share.index == i
            assert len(share.data) == 300  # 1/3 of the value

    def test_network_bytes_reduced_vs_paxos(self):
        def run(config):
            group = make_group(config)
            assert elect(group, 0)
            base = group.net.total_bytes_sent()
            propose_and_run(group, group.node(0), val(b"C" * 30_000))
            return group.net.total_bytes_sent() - base

        paxos_bytes = run(classic_paxos(5))
        rs_bytes = run(rs_paxos(5, 1))
        # §1: over 50% network saving for the accept phase.
        assert rs_bytes < paxos_bytes * 0.5

    def test_disk_bytes_reduced_vs_paxos(self):
        def run(config):
            group = make_group(config)
            assert elect(group, 0)
            propose_and_run(group, group.node(0), val(b"D" * 30_000))
            return sum(n.wal.disk.bytes_written for n in group.nodes)

        assert run(rs_paxos(5, 1)) < run(classic_paxos(5)) * 0.5

    def test_tolerates_one_crash_n5(self):
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        group.crash(4)
        decided = propose_and_run(group, group.node(0), val(b"ok"))
        assert len(decided) == 1

    def test_blocks_at_two_crashes_n5(self):
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        group.crash(3)
        group.crash(4)
        decided = propose_and_run(group, group.node(0), val(b"no"), until=3.0)
        assert decided == []

    def test_n7_f2_tolerates_two_crashes(self):
        group = make_group(rs_paxos(7, 2))
        assert elect(group, 0)
        group.crash(5)
        group.crash(6)
        decided = propose_and_run(group, group.node(0), val(b"E" * 300))
        assert len(decided) == 1
        assert decided[0][1].data == b"E" * 300

    def test_works_under_loss(self):
        group = make_group(
            rs_paxos(5, 1), link=LinkSpec(delay_s=0.001, loss_prob=0.3), seed=11
        )
        assert elect(group, 0, until=20.0)
        decided = propose_and_run(group, group.node(0), val(b"lossy"), until=30.0)
        assert len(decided) == 1

    def test_works_under_duplication(self):
        group = make_group(
            rs_paxos(5, 1), link=LinkSpec(delay_s=0.001, dup_prob=0.4), seed=12
        )
        assert elect(group, 0)
        decided = propose_and_run(group, group.node(0), val(b"dups"))
        assert len(decided) == 1


class TestLeaderTakeover:
    def test_new_leader_recovers_chosen_value(self):
        """A value chosen under the old leader survives takeover: the new
        leader must reconstruct it from coded shares (Prop. 3)."""
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        payload = b"precious" * 50
        decided = propose_and_run(group, group.node(0), val(payload))
        inst, v0 = decided[0]
        group.crash(0)
        assert elect(group, 1, until=10.0)
        new_leader = group.node(1)
        assert inst in new_leader.chosen
        rec = new_leader.chosen[inst]
        assert rec.value_id == v0.value_id

    def test_new_leader_reproposes_partially_accepted_value(self):
        """Shares accepted by >= X but < QW acceptors: recoverable, so
        the new leader re-proposes the same value."""
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        leader = group.node(0)
        payload = b"partial" * 10
        # Partition two followers so accepts only reach 0,1,2 (3 = X,
        # one short of QW=4): the value cannot be chosen yet.
        group.net.partition(["P1"], ["P4", "P5"])
        leader.propose(val(payload), lambda i, v: None)
        group.sim.run(until=group.sim.now + 1.0)
        # Heal, then crash a node that never held a share (stays within
        # F = 1). The old leader stays up as an acceptor — its share is
        # one of the 3 the new leader needs — but gets preempted.
        group.net.heal()
        group.crash(4)
        assert elect(group, 1, until=10.0)
        group.sim.run(until=group.sim.now + 5.0)
        # The new leader found >= 3 shares and re-proposed the value.
        rec = group.node(1).chosen.get(0)
        assert rec is not None
        assert rec.value is not None and rec.value.data == payload

    def test_new_leader_fills_unrecoverable_with_noop(self):
        """Shares accepted by < X acceptors: not recoverable, not chosen;
        the new leader is free to fill the instance with a no-op."""
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        leader = group.node(0)
        # Accepts reach only nodes 0 and 1 (2 < X = 3).
        group.net.partition(["P1"], ["P3", "P4", "P5"])
        leader.propose(val(b"never chosen"), lambda i, v: None)
        group.sim.run(until=group.sim.now + 1.0)
        group.crash(0)
        group.net.heal()
        assert elect(group, 1, until=10.0)
        group.sim.run(until=group.sim.now + 2.0)
        rec = group.node(1).chosen.get(0)
        assert rec is not None
        assert is_noop(rec.value_id)

    def test_stale_leader_preempted(self):
        group = make_group(classic_paxos(3))
        assert elect(group, 0)
        preempted = []
        group.node(0).on_preempted = lambda b: preempted.append(b)
        assert elect(group, 1)
        # Old leader proposes; acceptors nack with the higher ballot.
        group.node(0).propose(val(b"stale"), lambda i, v: None)
        group.sim.run(until=group.sim.now + 2.0)
        assert preempted
        assert not group.node(0).is_leader

    def test_leader_election_race_converges(self):
        group = make_group(classic_paxos(5))
        results = {}
        group.node(0).become_leader(lambda ok: results.setdefault(0, ok))
        group.node(1).become_leader(lambda ok: results.setdefault(1, ok))
        group.sim.run(until=10.0)
        # At least one attempt resolves; at most one may win.
        assert len(results) >= 1
        assert sum(1 for ok in results.values() if ok) <= 1


class TestCrashRecovery:
    def test_acceptor_state_survives_crash(self):
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        decided = propose_and_run(group, group.node(0), val(b"durable" * 20))
        inst = decided[0][0]
        share_before = group.node(2).acceptor.accepted_share(inst)
        group.crash(2)
        group.recover(2)
        share_after = group.node(2).acceptor.accepted_share(inst)
        assert share_after is not None
        assert share_after.value_id == share_before.value_id
        assert share_after.data == share_before.data

    def test_recovered_acceptor_keeps_promise_floor(self):
        group = make_group(classic_paxos(3))
        assert elect(group, 0)
        ballot = group.node(0).leader_ballot
        group.crash(1)
        group.recover(1)
        assert group.node(1).acceptor.state.floor >= ballot

    def test_chosen_still_reachable_after_crash_recover(self):
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        decided = propose_and_run(group, group.node(0), val(b"sticky" * 30))
        inst, v = decided[0]
        group.crash(1)
        group.recover(1)
        group.crash(0)  # leader gone; node 1 recovered from WAL
        assert elect(group, 1, until=10.0)
        rec = group.node(1).chosen.get(inst)
        assert rec is not None and rec.value_id == v.value_id
