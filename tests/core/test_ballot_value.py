"""Tests for ballots, values and coded-share handling."""

import pytest

from repro.core import (
    NULL_BALLOT,
    Ballot,
    CodedShare,
    Value,
    decode_value,
    encode_one_share,
    encode_value,
    fresh_value_id,
)
from repro.erasure import CodingConfig, NotEnoughShares


class TestBallot:
    def test_total_order(self):
        assert Ballot(1, 0) < Ballot(2, 0)
        assert Ballot(1, 0) < Ballot(1, 1)
        assert Ballot(2, 0) > Ballot(1, 5)

    def test_null_ballot_below_everything(self):
        assert NULL_BALLOT < Ballot.initial(0)
        assert NULL_BALLOT < Ballot(0, 0)

    def test_next(self):
        b = Ballot(3, 1)
        assert b.next(2) == Ballot(4, 2)
        assert b.next(2) > b

    def test_uniqueness_across_proposers(self):
        assert Ballot(1, 0) != Ballot(1, 1)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            Ballot(-1, 0)

    def test_str(self):
        assert str(Ballot(2, 3)) == "b(2.3)"


class TestValue:
    def test_fresh_ids_unique(self):
        ids = {fresh_value_id(0) for _ in range(100)}
        assert len(ids) == 100

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Value("v", -1)
        with pytest.raises(ValueError):
            Value("v", 5, b"abc")
        Value("v", 3, b"abc")  # consistent

    def test_modeled_value_has_no_data(self):
        v = Value("v", 1024)
        assert v.data is None


class TestEncodeDecodeValue:
    CFG = CodingConfig(3, 5)

    def test_concrete_roundtrip(self):
        v = Value("v1", 10, b"0123456789")
        shares = encode_value(v, self.CFG)
        assert len(shares) == 5
        out = decode_value(shares[2:])
        assert out.data == v.data
        assert out.value_id == "v1"

    def test_modeled_mode_sizes_only(self):
        v = Value("v1", 999)
        shares = encode_value(v, self.CFG)
        assert all(s.data is None for s in shares)
        assert all(s.size == self.CFG.share_size(999) for s in shares)
        out = decode_value(shares[:3])
        assert out.size == 999 and out.data is None

    def test_decode_insufficient_raises(self):
        v = Value("v1", 300)
        shares = encode_value(v, self.CFG)
        with pytest.raises(NotEnoughShares):
            decode_value(shares[:2])
        with pytest.raises(NotEnoughShares):
            decode_value([])

    def test_decode_duplicates_dont_count(self):
        v = Value("v1", 300)
        s = encode_value(v, self.CFG)[0]
        with pytest.raises(NotEnoughShares):
            decode_value([s, s, s])

    def test_mixed_value_ids_rejected(self):
        a = encode_value(Value("a", 30, b"x" * 30), self.CFG)
        b = encode_value(Value("b", 30, b"y" * 30), self.CFG)
        with pytest.raises(ValueError):
            decode_value([a[0], a[1], b[2]])

    def test_encode_one_share_matches(self):
        v = Value("v1", 31, bytes(range(31)))
        full = encode_value(v, self.CFG)
        for i in range(5):
            single = encode_one_share(v, self.CFG, i)
            assert single.data == full[i].data

    def test_encode_one_share_modeled(self):
        v = Value("v1", 31)
        s = encode_one_share(v, self.CFG, 4)
        assert s.data is None and s.index == 4

    def test_share_size_property(self):
        s = CodedShare("v", 0, self.CFG, value_size=100)
        assert s.size == 34  # ceil(100/3)

    def test_replication_share_is_full_value(self):
        cfg = CodingConfig(1, 5)
        v = Value("v1", 4, b"abcd")
        shares = encode_value(v, cfg)
        assert all(s.size == 4 for s in shares)
        assert decode_value([shares[4]]).data == b"abcd"
