"""Tests for protocol configuration constructors and safety validation."""

import pytest

from repro.core import (
    ProtocolConfig,
    QuorumSystem,
    classic_paxos,
    naive_ec_paxos,
    rs_paxos,
    rs_paxos_custom,
)
from repro.erasure import CodingConfig


class TestClassicPaxos:
    def test_majority_full_copy(self):
        cfg = classic_paxos(5)
        assert (cfg.q_r, cfg.q_w, cfg.x, cfg.f) == (3, 3, 1, 2)
        assert not cfg.is_erasure_coded
        assert cfg.is_safe

    def test_various_n(self):
        assert classic_paxos(3).f == 1
        assert classic_paxos(7).f == 3
        assert classic_paxos(9).f == 4


class TestRSPaxos:
    def test_headline_configuration(self):
        cfg = rs_paxos(5, 1)
        assert (cfg.n, cfg.q_r, cfg.q_w, cfg.x, cfg.f) == (5, 4, 4, 3, 1)
        assert cfg.is_erasure_coded
        assert str(cfg.coding) == "theta(3,5)"

    def test_paper_section34(self):
        cfg = rs_paxos(7, 2)
        assert (cfg.q_r, cfg.q_w, cfg.x) == (5, 5, 3)

    def test_custom_quorums_default_max_x(self):
        cfg = rs_paxos_custom(7, 5, 6)
        assert cfg.x == 4  # QR + QW - N

    def test_custom_quorums_smaller_x_allowed(self):
        # Using X below the intersection is safe (just less efficient).
        cfg = rs_paxos_custom(7, 5, 5, x=2)
        assert cfg.is_safe

    def test_unsafe_x_rejected(self):
        with pytest.raises(ValueError):
            rs_paxos_custom(5, 3, 3, x=2)  # intersection is only 1

    def test_mismatched_coding_n_rejected(self):
        with pytest.raises(ValueError):
            ProtocolConfig(QuorumSystem(5, 4, 4), CodingConfig(3, 7))

    def test_rs_paxos_is_superset_of_paxos(self):
        # §3.2: "RS-Paxos is actually a superset of Paxos. In Paxos, X=1."
        paxos = classic_paxos(5)
        rs_as_paxos = rs_paxos_custom(5, 3, 3, x=1)
        assert paxos.quorums == rs_as_paxos.quorums
        assert paxos.coding == rs_as_paxos.coding


class TestNaive:
    def test_requires_explicit_opt_in(self):
        with pytest.raises(ValueError):
            naive_ec_paxos(5)

    def test_flagged_unsafe(self):
        cfg = naive_ec_paxos(5, allow_unsafe=True)
        assert not cfg.is_safe
        assert cfg.is_erasure_coded

    def test_network_saving_is_why_it_tempts(self):
        # The naive config *would* save the same bytes as RS-Paxos at
        # majority quorums — that's the §2.3 temptation.
        cfg = naive_ec_paxos(5, allow_unsafe=True)
        assert cfg.coding.share_size(3000) == 1000
