"""Tests for proposer-side pure logic: the phase-1(c) scan and trackers."""

from repro.core import (
    Accepted,
    Ballot,
    Promise,
    PromiseTracker,
    Value,
    VoteTracker,
    encode_value,
    scan_instance,
    scan_promises,
)
from repro.erasure import CodingConfig

CFG = CodingConfig(3, 5)


def shares_of(value_id: str, data: bytes | None = None, size: int = 300):
    v = Value(value_id, size if data is None else len(data), data)
    return encode_value(v, CFG)


class TestScanInstance:
    def test_no_accepts_means_free_choice(self):
        result = scan_instance([])
        assert result.must_repropose is None
        assert result.unrecoverable == ()

    def test_recoverable_value_found(self):
        shares = shares_of("v1")
        accepted = [(Ballot(1, 0), shares[i]) for i in range(3)]
        result = scan_instance(accepted)
        assert result.must_repropose is not None
        assert result.must_repropose.value.value_id == "v1"
        assert result.must_repropose.ballot == Ballot(1, 0)
        assert result.must_repropose.shares_seen == 3

    def test_concrete_value_reconstructed(self):
        data = b"the chosen value!"
        shares = shares_of("v1", data)
        accepted = [(Ballot(1, 0), shares[i]) for i in (1, 3, 4)]
        result = scan_instance(accepted)
        assert result.must_repropose.value.data == data

    def test_insufficient_shares_unrecoverable(self):
        # Exactly the §2.3 situation: 2 < X = 3 shares visible.
        shares = shares_of("v1")
        accepted = [(Ballot(1, 0), shares[i]) for i in range(2)]
        result = scan_instance(accepted)
        assert result.must_repropose is None
        assert result.unrecoverable == ("v1",)

    def test_highest_ballot_recoverable_wins(self):
        old = shares_of("old")
        new = shares_of("new")
        accepted = [(Ballot(1, 0), old[i]) for i in range(3)]
        accepted += [(Ballot(2, 1), new[i]) for i in range(3)]
        result = scan_instance(accepted)
        assert result.must_repropose.value.value_id == "new"

    def test_unrecoverable_higher_ballot_falls_back(self):
        # A higher-ballot value with too few shares is skipped; the
        # recoverable lower-ballot value is re-proposed. (The paper's
        # rule: "picks up the recoverable value with highest ballot".)
        older = shares_of("older")
        newer = shares_of("newer")
        accepted = [(Ballot(1, 0), older[i]) for i in range(3)]
        accepted += [(Ballot(5, 1), newer[0])]
        result = scan_instance(accepted)
        assert result.must_repropose.value.value_id == "older"
        assert result.unrecoverable == ("newer",)

    def test_duplicate_share_indices_do_not_count(self):
        shares = shares_of("v1")
        accepted = [
            (Ballot(1, 0), shares[0]),
            (Ballot(1, 0), shares[0]),
            (Ballot(1, 0), shares[1]),
        ]
        result = scan_instance(accepted)
        assert result.must_repropose is None

    def test_replication_single_share_recovers(self):
        cfg = CodingConfig(1, 5)
        v = Value("v1", 5, b"paxos")
        shares = encode_value(v, cfg)
        result = scan_instance([(Ballot(1, 0), shares[4])])
        assert result.must_repropose.value.data == b"paxos"


class TestScanPromises:
    def test_merges_across_acceptors(self):
        shares = shares_of("v1")
        promises = [
            Promise(Ballot(2, 0), 0, {5: (Ballot(1, 0), shares[i])})
            for i in range(3)
        ]
        results = scan_promises(promises)
        assert set(results) == {5}
        assert results[5].must_repropose.value.value_id == "v1"

    def test_multiple_instances(self):
        s1, s2 = shares_of("a"), shares_of("b")
        promises = [
            Promise(Ballot(2, 0), 0, {
                1: (Ballot(1, 0), s1[i]),
                2: (Ballot(1, 0), s2[i]),
            })
            for i in range(3)
        ]
        results = scan_promises(promises)
        assert results[1].must_repropose.value.value_id == "a"
        assert results[2].must_repropose.value.value_id == "b"

    def test_empty(self):
        assert scan_promises([]) == {}


class TestVoteTracker:
    def make(self, quorum=4):
        return VoteTracker(instance=0, ballot=Ballot(1, 0), value_id="v", quorum=quorum)

    def vote(self, acceptor, ballot=Ballot(1, 0), value_id="v", instance=0):
        return Accepted(instance=instance, ballot=ballot, value_id=value_id,
                        acceptor=acceptor)

    def test_quorum_reached_once(self):
        t = self.make(quorum=3)
        assert not t.record(self.vote(0))
        assert not t.record(self.vote(1))
        assert t.record(self.vote(2))  # crossing returns True once
        assert not t.record(self.vote(3))
        assert t.chosen

    def test_duplicate_voter_ignored(self):
        t = self.make(quorum=2)
        t.record(self.vote(0))
        assert not t.record(self.vote(0))
        assert not t.chosen

    def test_wrong_ballot_ignored(self):
        t = self.make(quorum=1)
        assert not t.record(self.vote(0, ballot=Ballot(9, 9)))

    def test_wrong_value_ignored(self):
        t = self.make(quorum=1)
        assert not t.record(self.vote(0, value_id="other"))

    def test_wrong_instance_ignored(self):
        t = self.make(quorum=1)
        assert not t.record(self.vote(0, instance=3))


class TestPromiseTracker:
    def test_quorum_crossing(self):
        t = PromiseTracker(ballot=Ballot(1, 0), quorum=2)
        p = Promise(Ballot(1, 0), 0)
        assert not t.record(0, p)
        assert t.record(1, p)
        assert not t.record(2, p)
        assert t.complete

    def test_wrong_ballot_ignored(self):
        t = PromiseTracker(ballot=Ballot(1, 0), quorum=1)
        assert not t.record(0, Promise(Ballot(2, 0), 0))

    def test_duplicate_acceptor_ignored(self):
        t = PromiseTracker(ballot=Ballot(1, 0), quorum=2)
        p = Promise(Ballot(1, 0), 0)
        t.record(0, p)
        assert not t.record(0, p)
