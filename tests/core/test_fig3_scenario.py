"""The paper's Figure 3 example: RS-Paxos N=7, QW=QR=5, X=3.

"With two lost accept messages and two replica crashes, the system is
still safe": the value is chosen with 5 acks; after P2 and P3 crash a
new proposer still collects >= 3 coded shares inside any read quorum
and recovers the value.
"""

import pytest

from repro.core import Value, rs_paxos

from .harness import elect, make_group


@pytest.fixture
def fig3_group():
    group = make_group(rs_paxos(7, 2))
    cfg = group.node(0).config
    assert (cfg.n, cfg.q_r, cfg.q_w, cfg.x, cfg.f) == (7, 5, 5, 3, 2)
    return group


class TestFigure3:
    def test_chosen_with_two_lost_accepts(self, fig3_group):
        group = fig3_group
        assert elect(group, 0)
        # Two accept messages are "lost": P6 and P7 never see them.
        group.net.partition(["P1"], ["P6", "P7"])
        decided = []
        group.node(0).propose(
            Value("fig3-value", 600, b"F" * 600),
            lambda inst, v: decided.append((inst, v.value_id)),
        )
        group.sim.run(until=group.sim.now + 2.0)
        # 5 acks (P1..P5) = QW: chosen despite the lost accepts.
        assert decided == [(0, "fig3-value")]

    def test_recovery_after_two_crashes(self, fig3_group):
        group = fig3_group
        assert elect(group, 0)
        group.net.partition(["P1"], ["P6", "P7"])
        decided = []
        group.node(0).propose(
            Value("fig3-value", 600, b"F" * 600),
            lambda inst, v: decided.append(v),
        )
        group.sim.run(until=group.sim.now + 2.0)
        assert decided

        # Two replicas that hold shares crash (the paper crashes two
        # of the acceptors that accepted).
        group.crash(1)  # P2
        group.crash(2)  # P3
        group.net.heal()

        # A new proposer (P7, which never saw the value) takes over.
        assert elect(group, 6, until=10.0)
        group.sim.run(until=group.sim.now + 5.0)
        new_leader = group.node(6)
        rec = new_leader.chosen.get(0)
        assert rec is not None
        assert rec.value_id == "fig3-value"
        # The shares from P1, P4, P5 (3 = X) sufficed to reconstruct the
        # actual bytes, not just the id.
        assert rec.value is not None and rec.value.data == b"F" * 600

    def test_share_arithmetic_matches_paper(self, fig3_group):
        # Each coded share is 1/3 the size of the value (§3.4: "Each
        # coded data share is 1/3 size of the original data").
        cfg = fig3_group.node(0).config
        assert cfg.coding.share_size(600) == 200
