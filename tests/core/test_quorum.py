"""Tests for the quorum algebra, including the paper's Table 1."""

import pytest

from repro.core import (
    QuorumSystem,
    disk_bytes_per_write,
    enumerate_configs,
    network_bytes_per_write,
)
from repro.erasure import CodingConfig


class TestQuorumSystem:
    def test_intersection_identity(self):
        q = QuorumSystem(7, 5, 5)
        # QR + QW - X = N  (§3.2)
        assert q.q_r + q.q_w - q.x == q.n
        assert q.x == 3

    def test_f_identities(self):
        # F = N - max(QR, QW) = min(QR, QW) - X  (§3.2)
        for n, q_r, q_w in [(7, 5, 5), (7, 3, 5), (5, 4, 4), (9, 7, 8)]:
            q = QuorumSystem(n, q_r, q_w)
            assert q.f == n - max(q_r, q_w)
            assert q.f == min(q_r, q_w) - q.x

    def test_majority(self):
        q = QuorumSystem.majority(5)
        assert (q.q_r, q.q_w, q.x, q.f) == (3, 3, 1, 2)
        assert q.is_majority
        q7 = QuorumSystem.majority(7)
        assert (q7.q_r, q7.q_w, q7.x, q7.f) == (4, 4, 1, 3)

    def test_non_intersecting_rejected(self):
        with pytest.raises(ValueError):
            QuorumSystem(5, 2, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QuorumSystem(5, 0, 3)
        with pytest.raises(ValueError):
            QuorumSystem(5, 6, 3)

    def test_for_fault_tolerance_paper_setups(self):
        # §6.1 headline: N=5, F=1 -> Q=4, X=3.
        q = QuorumSystem.for_fault_tolerance(5, 1)
        assert (q.q_r, q.q_w, q.x, q.f) == (4, 4, 3, 1)
        # §3.4 example: N=7, F=2 -> Q=5, X=3.
        q = QuorumSystem.for_fault_tolerance(7, 2)
        assert (q.q_r, q.q_w, q.x, q.f) == (5, 5, 3, 2)

    def test_for_fault_tolerance_infeasible(self):
        with pytest.raises(ValueError):
            QuorumSystem.for_fault_tolerance(5, 3)  # X would be -1
        with pytest.raises(ValueError):
            QuorumSystem.for_fault_tolerance(4, 2)  # X would be 0

    def test_three_node_rs_paxos_degenerates_to_paxos(self):
        # §6.1: "a 3-replica Paxos ... has to set X=1 to tolerate a
        # failure, making it no different to Paxos."
        q = QuorumSystem.for_fault_tolerance(3, 1)
        assert q.x == 1
        assert q.max_safe_coding() == CodingConfig(1, 3)

    def test_max_safe_coding(self):
        q = QuorumSystem(5, 4, 4)
        assert q.max_safe_coding() == CodingConfig(3, 5)


class TestTable1:
    """Regenerate Table 1 (N = 7) and check it row for row."""

    PAPER_ROWS = [
        # (QW, QR, X, F)
        (4, 4, 1, 3),
        (5, 3, 1, 2),
        (5, 4, 2, 2),
        (5, 5, 3, 2),
        (6, 2, 1, 1),
        (6, 3, 2, 1),
        (6, 4, 3, 1),
        (6, 5, 4, 1),
        (6, 6, 5, 1),
    ]
    PAPER_HIGHLIGHTED = {(4, 4, 1, 3), (5, 5, 3, 2), (6, 6, 5, 1)}

    def test_rows_match_paper(self):
        rows = enumerate_configs(7)
        assert [r.as_tuple() for r in rows] == self.PAPER_ROWS

    def test_highlighted_max_x_rows(self):
        rows = enumerate_configs(7)
        highlighted = {r.as_tuple() for r in rows if r.max_x_for_f}
        assert highlighted == self.PAPER_HIGHLIGHTED

    def test_all_rows_satisfy_identities(self):
        for r in enumerate_configs(7):
            assert r.q_r + r.q_w - r.x == 7
            assert r.f == 7 - max(r.q_r, r.q_w)
            assert r.f == min(r.q_r, r.q_w) - r.x

    def test_enumeration_other_n(self):
        rows5 = enumerate_configs(5)
        assert (4, 4, 3, 1) in {r.as_tuple() for r in rows5}
        # N=3 admits only the majority row at F=1.
        rows3 = enumerate_configs(3)
        assert [r.as_tuple() for r in rows3] == [(2, 2, 1, 1)]


class TestCostModel:
    def test_network_bytes_paxos_vs_rspaxos(self):
        size = 3 * 1024
        paxos = network_bytes_per_write(5, size, CodingConfig(1, 5))
        rs = network_bytes_per_write(5, size, CodingConfig(3, 5))
        assert paxos == 4 * size
        assert rs == 4 * (size // 3)
        # Over 50% saving (§1: "can save over 50% of network transmission").
        assert rs < paxos / 2

    def test_disk_bytes(self):
        size = 3 * 1024
        assert disk_bytes_per_write(5, size, CodingConfig(1, 5)) == 5 * size
        assert disk_bytes_per_write(5, size, CodingConfig(3, 5)) == 5 * (size // 3)

    def test_leaderless_mode_counts_all_receivers(self):
        size = 300
        assert network_bytes_per_write(
            5, size, CodingConfig(1, 5), leader_holds_value=False
        ) == 5 * size
