"""Tests for the canonical (two-roundtrip) proposal mode (§2.1)."""

import pytest

from repro.core import Value, classic_paxos, fresh_value_id, rs_paxos

from .harness import elect, make_group


def val(payload: bytes) -> Value:
    return Value(fresh_value_id(0), len(payload), payload)


class TestCanonicalPropose:
    def test_single_value_chosen(self):
        group = make_group(classic_paxos(5))
        decided = []
        group.node(0).propose_canonical(
            val(b"canonical"), lambda i, v: decided.append((i, v.data))
        )
        group.sim.run(until=5.0)
        assert decided == [(0, b"canonical")]

    def test_rs_paxos_coded(self):
        group = make_group(rs_paxos(5, 1))
        decided = []
        group.node(0).propose_canonical(
            val(b"C" * 900), lambda i, v: decided.append(v.data)
        )
        group.sim.run(until=5.0)
        assert decided == [b"C" * 900]
        share = group.node(3).acceptor.accepted_share(0)
        assert len(share.data) == 300

    def test_sequential_values(self):
        group = make_group(classic_paxos(3))
        decided = []

        def next_one(i=0):
            if i >= 5:
                return
            group.node(0).propose_canonical(
                val(f"v{i}".encode()),
                lambda inst, v, i=i: (decided.append((inst, v.data)),
                                      next_one(i + 1)),
            )

        next_one()
        group.sim.run(until=10.0)
        assert [d for _, d in decided] == [b"v0", b"v1", b"v2", b"v3", b"v4"]

    def test_respects_previously_accepted_value(self):
        """A canonical proposer must re-propose a recoverable earlier
        value rather than its own."""
        group = make_group(rs_paxos(5, 1))
        assert elect(group, 0)
        payload = b"sticky" * 20
        decided0 = []
        group.node(0).propose(val(payload), lambda i, v: decided0.append(i))
        group.sim.run(until=group.sim.now + 2.0)
        assert decided0
        # Node 1 now proposes canonically into the same instance space.
        group.node(1).next_instance = 0
        decided1 = []
        group.node(1).propose_canonical(
            val(b"mine"), lambda i, v: decided1.append((i, v.data))
        )
        group.sim.run(until=group.sim.now + 5.0)
        assert decided1 == [(0, payload)]

    def test_two_canonical_proposers_converge(self):
        group = make_group(classic_paxos(5), seed=3)
        decided = []
        group.node(0).propose_canonical(
            val(b"from-0"), lambda i, v: decided.append((0, i, v.value_id))
        )
        group.node(1).propose_canonical(
            val(b"from-1"), lambda i, v: decided.append((1, i, v.value_id))
        )
        group.sim.run(until=20.0)
        # Each instance decided at most one value across all observers.
        by_inst = {}
        for node in group.nodes:
            for inst, rec in node.chosen.items():
                by_inst.setdefault(inst, set()).add(rec.value_id)
        for inst, ids in by_inst.items():
            assert len(ids) == 1

    def test_costs_more_roundtrips_than_leader_path(self):
        """The §2.1 point: canonical Paxos pays an extra prepare round
        per value; Multi-Paxos amortizes it."""

        def messages_for(mode):
            group = make_group(classic_paxos(5))
            if mode == "leader":
                assert elect(group, 0)
            base = group.net.messages_sent
            decided = []
            if mode == "leader":
                group.node(0).propose(val(b"x" * 100), lambda i, v: decided.append(i))
            else:
                group.node(0).propose_canonical(
                    val(b"x" * 100), lambda i, v: decided.append(i)
                )
            group.sim.run(until=group.sim.now + 3.0)
            assert decided
            return group.net.messages_sent - base

        assert messages_for("canonical") > messages_for("leader") * 1.5
