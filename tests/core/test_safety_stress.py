"""Randomized safety stress: adversarial schedules against (RS-)Paxos.

Each case runs a group under a randomly impaired network (loss,
duplication, jitter), with competing leaders and up to F crashes at
random times, then checks the two safety properties the paper proves:

- **Consistency**: no instance decides two different values (enforced
  inline by ConsistencyViolation; re-checked across nodes here).
- **Non-triviality**: every decided value was actually proposed
  (client values or takeover no-ops).

Determinism of the simulator makes every failure reproducible from its
seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Value, classic_paxos, is_noop, rs_paxos
from repro.net import LinkSpec

from .harness import make_group


def run_adversarial_schedule(config, seed: int, crashes: int) -> None:
    rng_link = LinkSpec(
        delay_s=0.005, jitter_s=0.004, bandwidth_bps=1e9,
        loss_prob=0.15, dup_prob=0.10,
    )
    group = make_group(config, link=rng_link, seed=seed, rpc_timeout=0.05)
    sim = group.sim
    rng = sim.rng.stream("stress")
    n = config.n

    proposed_ids: set[str] = set()
    seq = iter(range(10_000))

    def try_propose(node_idx: int) -> None:
        node = group.node(node_idx)

        def ready(ok: bool) -> None:
            if not ok or not node.is_leader:
                return
            for _ in range(3):
                vid = f"client.{node_idx}.{next(seq)}"
                proposed_ids.add(vid)
                node.propose(Value(vid, 512), lambda i, v: None)

        node.become_leader(ready)

    # Competing proposers at staggered times.
    for k, idx in enumerate(rng.permutation(n)[:3]):
        sim.call_at(0.05 * k, lambda i=int(idx): try_propose(i))
    # A second wave, racing the first.
    for k, idx in enumerate(rng.permutation(n)[:2]):
        sim.call_at(0.4 + 0.05 * k, lambda i=int(idx): try_propose(i))

    # Up to F crashes at random times (no recovery: worst case).
    crash_ids = [int(i) for i in rng.permutation(n)[:crashes]]
    for i, node_idx in enumerate(crash_ids):
        sim.call_at(float(rng.uniform(0.1, 1.5)), lambda x=node_idx: group.crash(x))

    sim.run(until=12.0)

    # Cross-node consistency: all deciders of an instance agree.
    decisions: dict[int, set[str]] = {}
    for node in group.nodes:
        for inst, rec in node.chosen.items():
            decisions.setdefault(inst, set()).add(rec.value_id)
    for inst, ids in decisions.items():
        assert len(ids) == 1, f"instance {inst} decided {ids}"

    # Non-triviality: decided values were proposed (or takeover no-ops).
    for inst, ids in decisions.items():
        vid = next(iter(ids))
        assert vid in proposed_ids or is_noop(vid), vid


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_rs_paxos_safety_under_adversarial_schedules(seed):
    run_adversarial_schedule(rs_paxos(5, 1), seed=seed, crashes=1)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_rs_paxos_n7_safety_with_two_crashes(seed):
    run_adversarial_schedule(rs_paxos(7, 2), seed=seed, crashes=2)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_classic_paxos_safety_with_two_crashes(seed):
    run_adversarial_schedule(classic_paxos(5), seed=seed, crashes=2)


@pytest.mark.parametrize("seed", [7, 42, 1234])
def test_progress_with_quorum_alive(seed):
    """Liveness smoke test: with <= F crashes, some value gets decided."""
    config = rs_paxos(5, 1)
    link = LinkSpec(delay_s=0.005, jitter_s=0.004, loss_prob=0.1, dup_prob=0.05)
    group = make_group(config, link=link, seed=seed, rpc_timeout=0.05)
    decided = []

    def ready(ok):
        if ok:
            group.node(0).propose(Value("v", 256), lambda i, v: decided.append(i))

    group.node(0).become_leader(ready)
    group.sim.call_at(0.2, lambda: group.crash(4))
    group.sim.run(until=15.0)
    assert decided
