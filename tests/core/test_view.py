"""Tests for views, view change classification and migration cost (§4.6)."""

import pytest

from repro.core import (
    MigrationKind,
    View,
    ViewChange,
    classify_migration,
    migration_bytes,
    rs_paxos,
    rs_paxos_custom,
    classic_paxos,
)


def v(epoch, members, config):
    return View(epoch, tuple(members), config)


class TestView:
    def test_construction(self):
        view = v(0, range(5), rs_paxos(5, 1))
        assert view.epoch == 0
        assert view.config.x == 3

    def test_member_count_must_match_n(self):
        with pytest.raises(ValueError):
            v(0, range(4), rs_paxos(5, 1))

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            View(0, (1, 1, 2), classic_paxos(3))

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            View(-1, (0, 1, 2), classic_paxos(3))

    def test_successor_increments_epoch(self):
        view = v(3, range(5), rs_paxos(5, 1))
        nxt = view.successor(tuple(range(4)), rs_paxos_custom(4, 3, 3))
        assert nxt.epoch == 4

    def test_view_change_wire_bytes(self):
        vc = ViewChange(v(1, range(5), rs_paxos(5, 1)))
        assert vc.wire_bytes > 0


class TestClassifyMigration:
    OLD = v(0, range(5), rs_paxos(5, 1))  # N=5 Q=4 X=3

    def test_paper_same_x_example(self):
        # §4.6: same X, same members -> no re-spread.
        new = self.OLD.successor(tuple(range(5)), rs_paxos(5, 1))
        assert classify_migration(self.OLD, new) is MigrationKind.NONE

    def test_paper_shrink_example_confirm_only(self):
        # §4.6: old N=5,Q=4,X=3 -> new N'=4,Q'=3,X'=2 with every server
        # holding its share: only confirm placement.
        new = self.OLD.successor(tuple(range(4)), rs_paxos_custom(4, 3, 3, x=2))
        assert (
            classify_migration(self.OLD, new, all_shares_placed=True)
            is MigrationKind.CONFIRM_ONLY
        )

    def test_shrink_without_placement_recodes(self):
        new = self.OLD.successor(tuple(range(4)), rs_paxos_custom(4, 3, 3, x=2))
        assert (
            classify_migration(self.OLD, new, all_shares_placed=False)
            is MigrationKind.RECODE
        )

    def test_growth_always_recodes(self):
        # A new member holds nothing, placed or not.
        new = self.OLD.successor(tuple(range(6)), rs_paxos_custom(6, 5, 5, x=4))
        for placed in (True, False):
            assert (
                classify_migration(self.OLD, new, all_shares_placed=placed)
                is MigrationKind.RECODE
            )

    def test_confirm_requires_quorum_at_least_old_x(self):
        # New quorum 2 < old X=3: a read quorum may miss shares.
        new = self.OLD.successor((0, 1, 2), rs_paxos_custom(3, 2, 2, x=1))
        assert (
            classify_migration(self.OLD, new, all_shares_placed=True)
            is MigrationKind.RECODE
        )

    def test_same_x_with_shrink_is_none(self):
        old = v(0, range(5), classic_paxos(5))  # X = 1
        new = old.successor((0, 1, 2), classic_paxos(3))
        assert classify_migration(old, new) is MigrationKind.NONE


class TestMigrationBytes:
    def test_confirm_and_none_are_free(self):
        old = v(0, range(5), rs_paxos(5, 1))
        new = old.successor(tuple(range(4)), rs_paxos_custom(4, 3, 3, x=2))
        assert migration_bytes(old, new, 3 << 20, MigrationKind.NONE) == 0
        assert migration_bytes(old, new, 3 << 20, MigrationKind.CONFIRM_ONLY) == 0

    def test_recode_cost_scales_with_new_coding(self):
        old = v(0, range(5), rs_paxos(5, 1))
        new = old.successor(tuple(range(4)), rs_paxos_custom(4, 3, 3, x=2))
        cost = migration_bytes(old, new, 2 << 20, MigrationKind.RECODE)
        # N'-1 = 3 shares of half the value each.
        assert cost == 3 * (1 << 20)
