"""Tests for the pure acceptor state machine."""

from repro.core import (
    Accept,
    Accepted,
    Acceptor,
    Ballot,
    CodedShare,
    Nack,
    Prepare,
    Promise,
)
from repro.core.messages import META_BYTES
from repro.erasure import CodingConfig

CFG = CodingConfig(3, 5)


def share(value_id="v1", index=0, size=300):
    return CodedShare(value_id, index, CFG, size)


class TestPrepare:
    def test_first_prepare_promised(self):
        a = Acceptor(0)
        reply, durable = a.on_prepare(Prepare(Ballot(1, 0)))
        assert isinstance(reply, Promise)
        assert reply.ballot == Ballot(1, 0)
        assert reply.accepted == {}
        assert durable == META_BYTES

    def test_lower_prepare_nacked(self):
        a = Acceptor(0)
        a.on_prepare(Prepare(Ballot(5, 0)))
        reply, durable = a.on_prepare(Prepare(Ballot(3, 1)))
        assert isinstance(reply, Nack)
        assert reply.promised == Ballot(5, 0)
        assert durable == 0

    def test_equal_prepare_regranted(self):
        # Ballots are unique per proposer; an equal ballot can only be a
        # network duplicate of a prepare we already granted, so it is
        # idempotently re-granted (a Nack here would race the Promise).
        a = Acceptor(0)
        a.on_prepare(Prepare(Ballot(5, 0)))
        reply, _ = a.on_prepare(Prepare(Ballot(5, 0)))
        assert isinstance(reply, Promise)

    def test_higher_prepare_supersedes(self):
        a = Acceptor(0)
        a.on_prepare(Prepare(Ballot(1, 0)))
        reply, _ = a.on_prepare(Prepare(Ballot(2, 1)))
        assert isinstance(reply, Promise)

    def test_promise_reports_accepted_state(self):
        a = Acceptor(0)
        a.on_accept(Accept(3, Ballot(1, 0), share("v1")))
        a.on_accept(Accept(7, Ballot(1, 0), share("v2")))
        reply, _ = a.on_prepare(Prepare(Ballot(2, 1), from_instance=0))
        assert isinstance(reply, Promise)
        assert set(reply.accepted) == {3, 7}
        ballot, sh = reply.accepted[3]
        assert ballot == Ballot(1, 0) and sh.value_id == "v1"

    def test_promise_range_filters_instances(self):
        a = Acceptor(0)
        a.on_accept(Accept(3, Ballot(1, 0), share("v1")))
        a.on_accept(Accept(7, Ballot(1, 0), share("v2")))
        reply, _ = a.on_prepare(Prepare(Ballot(2, 1), from_instance=5))
        assert set(reply.accepted) == {7}

    def test_prepare_blocked_by_accepted_ballot_in_range(self):
        a = Acceptor(0)
        a.on_accept(Accept(4, Ballot(9, 2), share()))
        reply, _ = a.on_prepare(Prepare(Ballot(5, 1), from_instance=0))
        assert isinstance(reply, Nack)
        assert reply.promised == Ballot(9, 2)

    def test_prepare_not_blocked_by_instances_below_range(self):
        a = Acceptor(0)
        a.on_accept(Accept(4, Ballot(9, 2), share()))
        reply, _ = a.on_prepare(Prepare(Ballot(5, 1), from_instance=10))
        assert isinstance(reply, Promise)


class TestAccept:
    def test_accept_when_free(self):
        a = Acceptor(7)
        reply, durable = a.on_accept(Accept(0, Ballot(1, 0), share("v1", 2)))
        assert isinstance(reply, Accepted)
        assert reply.acceptor == 7
        assert reply.value_id == "v1"
        assert durable == META_BYTES + share().size

    def test_accept_at_promised_ballot(self):
        a = Acceptor(0)
        a.on_prepare(Prepare(Ballot(2, 1)))
        reply, _ = a.on_accept(Accept(0, Ballot(2, 1), share()))
        assert isinstance(reply, Accepted)

    def test_accept_below_promise_nacked(self):
        a = Acceptor(0)
        a.on_prepare(Prepare(Ballot(5, 1)))
        reply, durable = a.on_accept(Accept(0, Ballot(4, 0), share()))
        assert isinstance(reply, Nack)
        assert reply.promised == Ballot(5, 1)
        assert durable == 0

    def test_accept_above_promise_allowed(self):
        # Phase 2(b): accept unless promised ballot is greater.
        a = Acceptor(0)
        a.on_prepare(Prepare(Ballot(1, 1)))
        reply, _ = a.on_accept(Accept(0, Ballot(3, 2), share()))
        assert isinstance(reply, Accepted)

    def test_accept_raises_promise_floor_per_instance(self):
        a = Acceptor(0)
        a.on_accept(Accept(0, Ballot(5, 2), share()))
        reply, _ = a.on_accept(Accept(0, Ballot(3, 1), share("v2")))
        assert isinstance(reply, Nack)

    def test_overwrite_with_higher_ballot(self):
        a = Acceptor(0)
        a.on_accept(Accept(0, Ballot(1, 0), share("v1")))
        reply, _ = a.on_accept(Accept(0, Ballot(2, 1), share("v2", 1)))
        assert isinstance(reply, Accepted)
        assert a.accepted_share(0).value_id == "v2"

    def test_duplicate_accept_idempotent(self):
        a = Acceptor(0)
        a.on_accept(Accept(0, Ballot(1, 0), share("v1")))
        reply, _ = a.on_accept(Accept(0, Ballot(1, 0), share("v1")))
        assert isinstance(reply, Accepted)
        assert a.accepted_share(0).value_id == "v1"

    def test_instances_independent(self):
        a = Acceptor(0)
        a.on_accept(Accept(0, Ballot(9, 0), share("v1")))
        reply, _ = a.on_accept(Accept(1, Ballot(1, 1), share("v2")))
        assert isinstance(reply, Accepted)


class TestRangePromiseInteraction:
    def test_range_promise_blocks_lower_accepts_everywhere(self):
        # The floor is global (documented conservative choice).
        a = Acceptor(0)
        a.on_prepare(Prepare(Ballot(5, 1), from_instance=10))
        reply, _ = a.on_accept(Accept(2, Ballot(3, 0), share()))
        assert isinstance(reply, Nack)

    def test_state_export_restore(self):
        a = Acceptor(0)
        a.on_prepare(Prepare(Ballot(2, 1)))
        a.on_accept(Accept(0, Ballot(2, 1), share("v1")))
        snapshot = a.export_state()
        b = Acceptor(0)
        b.restore_state(snapshot)
        reply, _ = b.on_accept(Accept(0, Ballot(1, 0), share("v2")))
        assert isinstance(reply, Nack)
        assert b.accepted_share(0).value_id == "v1"

    def test_accepted_share_missing_instance(self):
        assert Acceptor(0).accepted_share(42) is None
