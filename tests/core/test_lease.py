"""Tests for leader leases and drifting local clocks (§4.3)."""

import pytest

from repro.core import Lease, LeaseConfig, LocalClock
from repro.sim import Simulator


class TestLeaseConfig:
    def test_follower_timeout_is_delta_plus_drift(self):
        cfg = LeaseConfig(duration=2.0, max_drift=0.05)
        assert cfg.follower_timeout == pytest.approx(2.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseConfig(duration=0)
        with pytest.raises(ValueError):
            LeaseConfig(duration=1.0, heartbeat_interval=1.0)
        with pytest.raises(ValueError):
            LeaseConfig(max_drift=-0.1)


class TestLocalClock:
    def test_offset_applied(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        assert LocalClock(sim, 0.02).now() == pytest.approx(10.02)
        assert LocalClock(sim, -0.02).now() == pytest.approx(9.98)


class TestLease:
    def make(self, offset=0.0, duration=2.0, drift=0.05):
        sim = Simulator()
        cfg = LeaseConfig(duration=duration, max_drift=drift,
                          heartbeat_interval=0.5)
        return sim, Lease(LocalClock(sim, offset), cfg)

    def advance(self, sim, t):
        sim.call_at(t, lambda: None)
        sim.run()

    def test_unrenewed_lease_not_held(self):
        sim, lease = self.make()
        assert not lease.held_by_leader()
        assert lease.vacant_for_follower()

    def test_renewed_lease_held_for_duration(self):
        sim, lease = self.make()
        lease.renew()
        self.advance(sim, 1.9)
        assert lease.held_by_leader()
        self.advance(sim, 2.1)
        assert not lease.held_by_leader()

    def test_follower_waits_longer_than_leader(self):
        # The §4.3 asymmetry: between Δ and Δ+δ the leader has stopped
        # serving fast reads but followers must not yet elect.
        sim, lease = self.make()
        lease.renew()
        self.advance(sim, 2.02)
        assert not lease.held_by_leader()
        assert not lease.vacant_for_follower()
        self.advance(sim, 2.06)
        assert lease.vacant_for_follower()

    def test_invalidate(self):
        sim, lease = self.make()
        lease.renew()
        lease.invalidate()
        assert not lease.held_by_leader()
        assert lease.vacant_for_follower()

    def test_fast_read_hold_boundary_at_plus_half_drift(self):
        # A clock pinned at the +δ/2 extreme (the worst fast clock
        # build_cluster ever draws) measures the hold window locally:
        # fast reads stop exactly at Δ after renewal, drift or not.
        sim, lease = self.make(offset=+0.025, duration=2.0, drift=0.05)
        lease.renew()
        self.advance(sim, 1.999)
        assert lease.held_by_leader()
        self.advance(sim, 2.001)
        assert not lease.held_by_leader()

    def test_vacancy_boundary_at_minus_half_drift(self):
        # The slowest clock (−δ/2) still waits the full Δ+δ before
        # declaring vacancy — the extra δ is what keeps a fast-read
        # leader and an electing follower from overlapping.
        sim, lease = self.make(offset=-0.025, duration=2.0, drift=0.05)
        lease.renew()
        self.advance(sim, 2.049)
        assert not lease.vacant_for_follower()
        self.advance(sim, 2.051)
        assert lease.vacant_for_follower()

    def test_no_overlap_at_extreme_offsets(self):
        # Probe the exact §4.3 boundary instants with the leader and
        # follower clocks pinned at ±δ/2, both assignments: at no
        # sampled instant may fast reads and vacancy coexist.
        for lead_off, foll_off in ((+0.05, -0.05), (-0.05, +0.05)):
            sim = Simulator()
            cfg = LeaseConfig(duration=2.0, max_drift=0.1,
                              heartbeat_interval=0.5)
            leader = Lease(LocalClock(sim, lead_off), cfg)
            follower = Lease(LocalClock(sim, foll_off), cfg)
            leader.renew()
            follower.renew()
            for t in (1.999, 2.0, 2.001, 2.05, 2.099, 2.1, 2.101):
                sim.call_at(t, lambda: None)
                sim.run()
                assert not (
                    leader.held_by_leader()
                    and follower.vacant_for_follower()
                ), f"overlap at t={t} offsets=({lead_off}, {foll_off})"

    def test_late_observed_renewal_only_delays_vacancy(self):
        # A follower that hears the renewal late (heartbeat delay)
        # starts its Δ+δ window later — vacancy moves later, never
        # earlier, so the no-overlap bound is preserved.
        sim = Simulator()
        cfg = LeaseConfig(duration=2.0, max_drift=0.1,
                          heartbeat_interval=0.5)
        leader = Lease(LocalClock(sim, +0.05), cfg)
        follower = Lease(LocalClock(sim, -0.05), cfg)
        leader.renew()
        sim.call_at(0.3, follower.renew)
        sim.run()
        self.advance(sim, 2.35)
        assert not leader.held_by_leader()
        assert not follower.vacant_for_follower()
        self.advance(sim, 2.45)
        assert follower.vacant_for_follower()

    def test_no_overlap_under_bounded_drift(self):
        """With |offsets| <= δ/2 a follower that declares vacancy can
        never do so while a leader still believes it holds the lease,
        regardless of drift direction."""
        sim = Simulator()
        cfg = LeaseConfig(duration=2.0, max_drift=0.1, heartbeat_interval=0.5)
        leader = Lease(LocalClock(sim, +0.05), cfg)   # fast clock
        follower = Lease(LocalClock(sim, -0.05), cfg)  # slow clock
        leader.renew()
        follower.renew()  # follower observed the same renewal
        for t in (0.5, 1.0, 1.5, 1.99, 2.0, 2.05, 2.1, 2.2):
            sim.call_at(t, lambda: None)
            sim.run()
            assert not (leader.held_by_leader() and follower.vacant_for_follower())
