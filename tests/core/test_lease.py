"""Tests for leader leases and drifting local clocks (§4.3)."""

import pytest

from repro.core import Lease, LeaseConfig, LocalClock
from repro.sim import Simulator


class TestLeaseConfig:
    def test_follower_timeout_is_delta_plus_drift(self):
        cfg = LeaseConfig(duration=2.0, max_drift=0.05)
        assert cfg.follower_timeout == pytest.approx(2.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseConfig(duration=0)
        with pytest.raises(ValueError):
            LeaseConfig(duration=1.0, heartbeat_interval=1.0)
        with pytest.raises(ValueError):
            LeaseConfig(max_drift=-0.1)


class TestLocalClock:
    def test_offset_applied(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        assert LocalClock(sim, 0.02).now() == pytest.approx(10.02)
        assert LocalClock(sim, -0.02).now() == pytest.approx(9.98)


class TestLease:
    def make(self, offset=0.0, duration=2.0, drift=0.05):
        sim = Simulator()
        cfg = LeaseConfig(duration=duration, max_drift=drift,
                          heartbeat_interval=0.5)
        return sim, Lease(LocalClock(sim, offset), cfg)

    def advance(self, sim, t):
        sim.call_at(t, lambda: None)
        sim.run()

    def test_unrenewed_lease_not_held(self):
        sim, lease = self.make()
        assert not lease.held_by_leader()
        assert lease.vacant_for_follower()

    def test_renewed_lease_held_for_duration(self):
        sim, lease = self.make()
        lease.renew()
        self.advance(sim, 1.9)
        assert lease.held_by_leader()
        self.advance(sim, 2.1)
        assert not lease.held_by_leader()

    def test_follower_waits_longer_than_leader(self):
        # The §4.3 asymmetry: between Δ and Δ+δ the leader has stopped
        # serving fast reads but followers must not yet elect.
        sim, lease = self.make()
        lease.renew()
        self.advance(sim, 2.02)
        assert not lease.held_by_leader()
        assert not lease.vacant_for_follower()
        self.advance(sim, 2.06)
        assert lease.vacant_for_follower()

    def test_invalidate(self):
        sim, lease = self.make()
        lease.renew()
        lease.invalidate()
        assert not lease.held_by_leader()
        assert lease.vacant_for_follower()

    def test_no_overlap_under_bounded_drift(self):
        """With |offsets| <= δ/2 a follower that declares vacancy can
        never do so while a leader still believes it holds the lease,
        regardless of drift direction."""
        sim = Simulator()
        cfg = LeaseConfig(duration=2.0, max_drift=0.1, heartbeat_interval=0.5)
        leader = Lease(LocalClock(sim, +0.05), cfg)   # fast clock
        follower = Lease(LocalClock(sim, -0.05), cfg)  # slow clock
        leader.renew()
        follower.renew()  # follower observed the same renewal
        for t in (0.5, 1.0, 1.5, 1.99, 2.0, 2.05, 2.1, 2.2):
            sim.call_at(t, lambda: None)
            sim.run()
            assert not (leader.held_by_leader() and follower.vacant_for_follower())
