"""Trace-level tests of the protocol message flow (Figures 1 and 3).

The paper's figures show the wire sequence of one instance:
prepare -> ack (promise) -> accept (one coded share per acceptor) ->
ack (accepted). These tests extract the sequence from the simulation
trace and check it — including that exactly one distinct share index
reaches each acceptor, the "colored squares" of Figure 1.
"""

import pytest

from repro.core import (
    Accept,
    Accepted,
    Commit,
    Prepare,
    Promise,
    Value,
    fresh_value_id,
    rs_paxos,
)
from repro.net import LinkSpec, build_network, server_names
from repro.rpc import Request, Reply, RpcEndpoint, Batch
from repro.sim import Simulator, Tracer
from repro.storage import SSD, Disk, WriteAheadLog
from repro.core import PaxosNode


def run_instance(config, payload=b"Z" * 900):
    sim = Simulator(seed=0)
    names = server_names(config.n)
    net = build_network(sim, names, LinkSpec(delay_s=0.001))
    peers = dict(enumerate(names))

    flow = []  # (time, src, dst, kind, detail)

    def spy(env):
        body = env.payload
        items = body.items if isinstance(body, Batch) else [body]
        for item in items:
            inner = item.body if isinstance(item, (Request, Reply)) else item
            detail = None
            if isinstance(inner, Accept):
                detail = inner.share.index
            flow.append((sim.now, env.src, env.dst,
                         type(inner).__name__, detail))

    nodes = []
    for i, name in enumerate(names):
        ep = RpcEndpoint(sim, net, name)
        orig = ep._on_envelope

        def wrapped(env, orig=orig):
            spy(env)
            orig(env)

        net.set_handler(name, wrapped)
        nodes.append(PaxosNode(
            sim, ep, WriteAheadLog(sim, Disk(sim, SSD, f"{name}.d")),
            config, node_id=i, peers=peers, rpc_timeout=5.0,
            commit_interval=0.001,
        ))

    ok, decided = [], []
    nodes[0].become_leader(lambda s: ok.append(s))
    sim.run(until=2.0)
    assert ok == [True]
    nodes[0].propose(Value(fresh_value_id(0), len(payload), payload),
                     lambda i, v: decided.append(i))
    sim.run(until=sim.now + 2.0)
    assert decided
    return flow


class TestFigure1Flow:
    def test_phase_order(self):
        flow = run_instance(rs_paxos(5, 1))
        kinds = [k for _, _, _, k, _ in flow]
        # Phase 1 strictly precedes phase 2 on the wire.
        assert kinds.index("Prepare") < kinds.index("Promise")
        assert kinds.index("Promise") < kinds.index("Accept")
        assert kinds.index("Accept") < kinds.index("Accepted")

    def test_each_acceptor_gets_its_own_share(self):
        flow = run_instance(rs_paxos(5, 1))
        share_by_dst = {}
        for _, src, dst, kind, detail in flow:
            if kind == "Accept":
                share_by_dst.setdefault(dst, set()).add(detail)
        # All 5 acceptors (the leader's own share travels by loopback,
        # which costs no wire bytes), each receiving exactly one
        # distinct index — Figure 1's coloring.
        assert len(share_by_dst) == 5
        indices = set()
        for dst, idxs in share_by_dst.items():
            assert len(idxs) == 1
            indices |= idxs
        assert indices == {0, 1, 2, 3, 4}

    def test_prepare_fans_out_to_all(self):
        flow = run_instance(rs_paxos(5, 1))
        prepare_dsts = {dst for _, _, dst, k, _ in flow if k == "Prepare"}
        assert len(prepare_dsts) == 5  # every acceptor, self included

    def test_commit_off_critical_path(self):
        flow = run_instance(rs_paxos(5, 1))
        accepted_times = [f[0] for f in flow if f[3] == "Accepted"]
        commit_times = [f[0] for f in flow if f[3] == "Commit"]
        assert commit_times, "commit notifications must exist"
        # Commits leave only after a write quorum of Accepted arrived.
        assert min(commit_times) >= sorted(accepted_times)[2]

    def test_n7_flow_matches_fig3(self):
        flow = run_instance(rs_paxos(7, 2), payload=b"F" * 600)
        share_by_dst = {}
        for _, src, dst, kind, detail in flow:
            if kind == "Accept":
                share_by_dst.setdefault(dst, set()).add(detail)
        assert len(share_by_dst) == 7
        # θ(3,7): share size is 200 bytes = 1/3 of the value.
        assert rs_paxos(7, 2).coding.share_size(600) == 200
