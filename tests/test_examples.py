"""Smoke tests: every shipped example runs to completion.

Each example is executed in a subprocess exactly as a user would run
it, and its key output lines are checked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "protocol: N=5 QR=4 QW=4 X=3" in out
        assert out.count("put user:") == 5
        assert "MISMATCH" not in out
        assert "redundancy" in out

    def test_naive_vs_rspaxos(self):
        out = run_example("naive_vs_rspaxos.py")
        assert "CONSISTENCY VIOLATION detected" in out
        assert "no violation raised" in out
        assert ":)" in out  # Figure 3's smiley

    def test_failover_demo(self):
        out = run_example("failover_demo.py")
        assert "leader killed" in out
        assert "after recover" in out

    def test_reconfiguration(self):
        out = run_example("reconfiguration.py")
        assert "confirm" in out
        assert "recode" in out
        assert "none" in out

    def test_wide_area_kv(self):
        out = run_example("wide_area_kv.py")
        assert "wide-area write latency" in out
        # The 16M row must show a substantial RS-Paxos saving.
        line_16m = next(l for l in out.splitlines() if l.strip().startswith("16M"))
        saving_ms = float(line_16m.split()[-1].rstrip("ms"))
        assert saving_ms > 50
