"""Unit tests for the RPC layer."""

from dataclasses import dataclass

import pytest

from repro.net import LinkSpec, build_network
from repro.rpc import Batch, RpcEndpoint
from repro.sim import Simulator


@dataclass
class Ping:
    n: int = 0


@dataclass
class Pong:
    n: int = 0


def make_endpoints(link=None, seed=0, names=("A", "B"), **kw):
    sim = Simulator(seed=seed)
    net = build_network(sim, list(names), link or LinkSpec(delay_s=0.001))
    eps = {n: RpcEndpoint(sim, net, n, **kw) for n in names}
    return sim, net, eps


class TestOneWay:
    def test_typed_dispatch(self):
        sim, net, eps = make_endpoints()
        got = []
        eps["B"].on(Ping, lambda msg, src: got.append((msg.n, src)))
        eps["A"].send("B", Ping(7), size=10)
        sim.run()
        assert got == [(7, "A")]

    def test_unregistered_type_ignored(self):
        sim, net, eps = make_endpoints()
        eps["A"].send("B", Ping(1), size=0)
        sim.run()  # no handler; nothing should explode

    def test_self_send(self):
        sim, net, eps = make_endpoints()
        got = []
        eps["A"].on(Ping, lambda msg, src: got.append(src))
        eps["A"].send("A", Ping(), size=0)
        sim.run()
        assert got == ["A"]


class TestRequestReply:
    def test_roundtrip(self):
        sim, net, eps = make_endpoints()
        eps["B"].on_request(Ping, lambda msg, src: Pong(msg.n + 1))
        got = []
        eps["A"].request("B", Ping(1), size=10, on_reply=lambda r: got.append(r))
        sim.run()
        assert len(got) == 1 and got[0].n == 2

    def test_reply_with_size(self):
        sim, net, eps = make_endpoints()
        eps["B"].on_request(Ping, lambda msg, src: (Pong(0), 5000))
        got = []
        eps["A"].request("B", Ping(), size=10, on_reply=lambda r: got.append(r))
        sim.run()
        assert isinstance(got[0], Pong)

    def test_retransmit_through_loss(self):
        # 80% loss: unbounded retries must still get through eventually.
        link = LinkSpec(delay_s=0.001, loss_prob=0.8)
        sim, net, eps = make_endpoints(link, seed=5)
        eps["B"].on_request(Ping, lambda msg, src: Pong(9))
        got = []
        eps["A"].request(
            "B", Ping(), size=10, on_reply=lambda r: got.append(r),
            timeout=0.05, retries=-1,
        )
        sim.run(until=60.0)
        assert len(got) == 1

    def test_bounded_retries_timeout(self):
        link = LinkSpec(delay_s=0.001, loss_prob=1.0)
        sim, net, eps = make_endpoints(link)
        timeouts = []
        eps["A"].request(
            "B", Ping(), size=10, on_reply=lambda r: pytest.fail("no reply expected"),
            timeout=0.01, retries=3, on_timeout=lambda: timeouts.append(sim.now),
        )
        sim.run()
        assert len(timeouts) == 1
        # initial + 3 retries, each expiring after 0.01.
        assert timeouts[0] == pytest.approx(0.04, abs=1e-6)
        assert eps["A"].requests_timed_out == 1

    def test_duplicate_replies_invoke_callback_once(self):
        link = LinkSpec(delay_s=0.001, dup_prob=1.0)
        sim, net, eps = make_endpoints(link)
        eps["B"].on_request(Ping, lambda msg, src: Pong())
        got = []
        eps["A"].request("B", Ping(), size=0, on_reply=lambda r: got.append(r))
        sim.run(until=5.0)
        assert len(got) == 1

    def test_duplicate_requests_answered_idempotently(self):
        # The request handler may run more than once under duplication;
        # dedup is the caller's business. Here we just check no crash
        # and exactly one callback.
        link = LinkSpec(delay_s=0.001, dup_prob=0.5)
        sim, net, eps = make_endpoints(link, seed=2)
        calls = []
        eps["B"].on_request(Ping, lambda msg, src: (calls.append(1), Pong())[1])
        got = []
        eps["A"].request("B", Ping(), size=0, on_reply=lambda r: got.append(r))
        sim.run(until=5.0)
        assert len(got) == 1
        assert len(calls) >= 1

    def test_cancel_request(self):
        sim, net, eps = make_endpoints()
        eps["B"].on_request(Ping, lambda msg, src: Pong())
        got = []
        rid = eps["A"].request(
            "B", Ping(), size=0, on_reply=lambda r: got.append(r), timeout=10.0
        )
        eps["A"].cancel_request(rid)
        sim.run(until=5.0)
        assert got == []

    def test_none_reply_means_no_response(self):
        sim, net, eps = make_endpoints()
        eps["B"].on_request(Ping, lambda msg, src: None)
        timeouts = []
        eps["A"].request(
            "B", Ping(), size=0, on_reply=lambda r: pytest.fail("unexpected"),
            timeout=0.01, retries=2, on_timeout=lambda: timeouts.append(1),
        )
        sim.run()
        assert timeouts == [1]


class TestLateReplies:
    def test_late_reply_after_final_timeout_dropped(self):
        # Regression: a reply landing after the final RequestTimeout
        # already fired must be dropped by the endpoint, never
        # dispatched to the (dead) continuation.
        sim, net, eps = make_endpoints()

        def slow(msg, src, respond):
            sim.call_after(1.0, lambda: respond(Pong(1), 0))

        eps["B"].on_request_async(Ping, slow)
        timeouts = []
        eps["A"].request(
            "B", Ping(), size=10,
            on_reply=lambda r: pytest.fail("late reply must not dispatch"),
            timeout=0.01, retries=3,
            on_timeout=lambda: timeouts.append(sim.now),
        )
        sim.run(until=5.0)
        assert timeouts == [pytest.approx(0.04, abs=1e-6)]
        # All 4 transmits eventually drew a (late) reply; every one of
        # them must land in the stale bucket.
        assert eps["A"].stale_replies_dropped == 4

    def test_reply_after_cancel_dropped(self):
        sim, net, eps = make_endpoints()
        eps["B"].on_request(Ping, lambda msg, src: Pong())
        rid = eps["A"].request(
            "B", Ping(), size=0,
            on_reply=lambda r: pytest.fail("cancelled"), timeout=10.0,
        )
        eps["A"].cancel_request(rid)
        sim.run(until=1.0)
        assert eps["A"].stale_replies_dropped == 1


class TestAdaptiveTimeouts:
    def test_peer_stats_empty_before_any_sample(self):
        sim, net, eps = make_endpoints()
        st = eps["A"].peer_stats("B")
        assert st.samples == 0
        assert eps["A"].peer_rtt("B") is None
        assert eps["A"].rto("B", 0.7) == 0.7  # fallback until a sample

    def test_first_sample_seeds_estimator(self):
        sim, net, eps = make_endpoints()
        eps["B"].on_request(Ping, lambda msg, src: Pong())
        eps["A"].request("B", Ping(), size=10, on_reply=lambda r: None)
        sim.run()
        st = eps["A"].peer_stats("B")
        assert st.samples == 1
        assert st.ewma == pytest.approx(0.002, rel=0.2)  # ~2x 1ms delay
        assert st.dev == pytest.approx(st.ewma / 2)
        # ewma + 4*dev is far below the floor on this quiet link.
        assert eps["A"].rto("B", 9.9) == eps["A"].rto_floor

    def test_karn_no_sample_from_retransmitted_exchange(self):
        # The first-ever exchange needs a retransmit: Karn's rule says
        # no clean sample, and with no prior estimate the one-sided
        # bound has nothing to raise — the estimator stays empty.
        sim, net, eps = make_endpoints()
        calls = []

        def second_time_lucky(msg, src, respond):
            calls.append(sim.now)
            if len(calls) == 2:
                respond(Pong(), 0)

        eps["B"].on_request_async(Ping, second_time_lucky)
        got = []
        eps["A"].request(
            "B", Ping(), size=10, on_reply=got.append,
            timeout=0.05, retries=-1,
        )
        sim.run(until=2.0)
        assert len(got) == 1
        assert eps["A"].peer_stats("B").samples == 0

    def test_ambiguous_reply_raises_estimate_under_congestion(self):
        # A clean fast sample first, then an exchange whose reply only
        # arrives after a retransmit: the since-first-transmit bound
        # must pull the estimate *up* (this is what breaks the
        # retransmit->queue->retransmit spiral under overload).
        sim, net, eps = make_endpoints()
        calls = []

        def handler(msg, src, respond):
            if msg.n == 0:
                respond(Pong(), 0)
            else:
                calls.append(sim.now)
                if len(calls) == 2:
                    respond(Pong(), 0)

        eps["B"].on_request_async(Ping, handler)
        got = []
        eps["A"].request("B", Ping(0), size=10, on_reply=got.append)
        sim.run(until=1.0)
        base = eps["A"].peer_stats("B")
        assert base.samples == 1
        eps["A"].request(
            "B", Ping(1), size=10, on_reply=got.append,
            timeout=0.05, retries=-1,
        )
        sim.run(until=2.0)
        st = eps["A"].peer_stats("B")
        assert len(got) == 2
        assert st.samples == 2
        assert st.ewma > base.ewma

    def test_ambiguous_reply_never_lowers_estimate(self):
        # Seed a *slow* clean estimate, then a retransmitted exchange
        # that completes quickly: the ambiguous bound may only raise,
        # so the slow estimate must survive untouched.
        sim, net, eps = make_endpoints()
        calls = []

        def handler(msg, src, respond):
            if msg.n == 0:
                sim.call_after(0.5, lambda: respond(Pong(), 0))
            else:
                calls.append(sim.now)
                if len(calls) == 2:
                    respond(Pong(), 0)

        eps["B"].on_request_async(Ping, handler)
        got = []
        eps["A"].request(
            "B", Ping(0), size=10, on_reply=got.append, timeout=2.0,
        )
        sim.run(until=3.0)
        base = eps["A"].peer_stats("B")
        assert base.samples == 1
        assert base.ewma == pytest.approx(0.502, rel=0.05)
        eps["A"].request(
            "B", Ping(1), size=10, on_reply=got.append,
            timeout=0.05, retries=-1,
        )
        sim.run(until=5.0)
        st = eps["A"].peer_stats("B")
        assert len(got) == 2
        assert st.samples == 1  # fast ambiguous bound discarded
        assert st.ewma == base.ewma

    def test_adaptive_request_uses_derived_rto_not_fallback(self):
        # After learning a ~0.5s RTT, an adaptive request to a silent
        # peer must wait ewma + 4*dev (~1.5s), not the 0.05s fallback.
        sim, net, eps = make_endpoints()

        def handler(msg, src, respond):
            if msg.n == 0:
                sim.call_after(0.5, lambda: respond(Pong(), 0))
            # n != 0: silence.

        eps["B"].on_request_async(Ping, handler)
        got = []
        eps["A"].request(
            "B", Ping(0), size=10, on_reply=got.append, timeout=2.0,
        )
        sim.run(until=3.0)
        expected = eps["A"].rto("B", 0.05)
        assert expected > 1.0
        start = sim.now
        timeouts = []
        eps["A"].request(
            "B", Ping(1), size=10,
            on_reply=lambda r: pytest.fail("peer is silent"),
            timeout=0.05, retries=0, adaptive=True,
            on_timeout=lambda: timeouts.append(sim.now - start),
        )
        sim.run(until=start + 10.0)
        assert timeouts == [pytest.approx(expected, rel=1e-6)]

    def test_adaptive_backoff_doubles_per_retransmit(self):
        # No samples yet: the fallback seeds the first interval, then
        # each retransmission doubles it (0.1 + 0.2 + 0.4).
        sim, net, eps = make_endpoints()
        timeouts = []
        eps["A"].request(
            "B", Ping(), size=0,
            on_reply=lambda r: pytest.fail("no handler registered"),
            timeout=0.1, retries=2, adaptive=True,
            on_timeout=lambda: timeouts.append(sim.now),
        )
        sim.run()
        assert timeouts == [pytest.approx(0.7, abs=1e-6)]

    def test_timeouts_adapted_counts_material_moves(self):
        # A fast sample then a much slower one moves the derived RTO by
        # far more than 25% — the adaptation counter must tick.
        sim, net, eps = make_endpoints()

        def handler(msg, src, respond):
            delay = 0.0 if msg.n == 0 else 0.3
            sim.call_after(delay, lambda: respond(Pong(), 0))

        eps["B"].on_request_async(Ping, handler)
        got = []
        eps["A"].request(
            "B", Ping(0), size=10, on_reply=got.append, timeout=2.0,
        )
        sim.run(until=1.0)
        assert eps["A"].timeouts_adapted == 0
        eps["A"].request(
            "B", Ping(1), size=10, on_reply=got.append, timeout=2.0,
        )
        sim.run(until=2.0)
        assert len(got) == 2
        assert eps["A"].timeouts_adapted == 1


class TestBatching:
    def test_batch_flushes_on_window(self):
        sim, net, eps = make_endpoints(batch_window=0.01)
        got = []
        eps["B"].on(Ping, lambda msg, src: got.append(msg.n))
        for i in range(3):
            eps["A"].send("B", Ping(i), size=100)
        # Nothing on the wire yet.
        assert net.messages_sent == 0
        sim.run()
        assert got == [0, 1, 2]
        assert net.messages_sent == 1  # one wire message for the batch

    def test_batch_flushes_on_max(self):
        sim, net, eps = make_endpoints(batch_window=10.0, batch_max=2)
        got = []
        eps["B"].on(Ping, lambda msg, src: got.append(msg.n))
        eps["A"].send("B", Ping(0), size=10)
        eps["A"].send("B", Ping(1), size=10)  # hits batch_max
        sim.run(until=1.0)
        assert got == [0, 1]

    def test_single_item_batch_not_wrapped(self):
        sim, net, eps = make_endpoints(batch_window=0.01)
        seen_types = []
        orig = eps["B"]._dispatch

        def spy(payload, src):
            seen_types.append(type(payload))
            orig(payload, src)

        net.set_handler("B", lambda env: spy(env.payload, env.src))
        eps["A"].send("B", Ping(5), size=10)
        sim.run()
        assert Batch not in seen_types

    def test_flush_all(self):
        sim, net, eps = make_endpoints(batch_window=100.0)
        got = []
        eps["B"].on(Ping, lambda msg, src: got.append(msg.n))
        eps["A"].send("B", Ping(1), size=10)
        eps["A"].flush_all()
        sim.run(until=1.0)
        assert got == [1]

    def test_batch_size_is_summed(self):
        # Two 1 MB items in one batch must cost ~2 MB of serialization.
        link = LinkSpec(delay_s=0.0, bandwidth_bps=8e6)  # 1 MB/s
        sim, net, eps = make_endpoints(link, batch_window=0.001)
        got = []
        eps["B"].on(Ping, lambda msg, src: got.append(sim.now))
        eps["A"].send("B", Ping(0), size=1_000_000)
        eps["A"].send("B", Ping(1), size=1_000_000)
        sim.run()
        # ~2s egress + ~2s ingress serialization.
        assert got[-1] == pytest.approx(4.0, rel=0.01)
