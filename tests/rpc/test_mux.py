"""Tests for channel multiplexing (many Paxos groups, one NIC)."""

from dataclasses import dataclass

import pytest

from repro.net import LinkSpec, build_network
from repro.rpc import Batch, ChannelMux, RpcEndpoint
from repro.sim import Simulator


@dataclass
class Msg:
    n: int = 0


@dataclass
class Req:
    n: int = 0


@dataclass
class Rep:
    n: int = 0


def make():
    sim = Simulator()
    net = build_network(sim, ["A", "B"], LinkSpec(delay_s=0.001))
    muxes = {n: ChannelMux(RpcEndpoint(sim, net, n)) for n in ("A", "B")}
    return sim, net, muxes


class TestOneWay:
    def test_routed_by_channel_key(self):
        sim, net, muxes = make()
        got = {1: [], 2: []}
        muxes["B"].channel(1).on(Msg, lambda m, src: got[1].append(m.n))
        muxes["B"].channel(2).on(Msg, lambda m, src: got[2].append(m.n))
        muxes["A"].channel(1).send("B", Msg(10), size=0)
        muxes["A"].channel(2).send("B", Msg(20), size=0)
        sim.run()
        assert got == {1: [10], 2: [20]}

    def test_unknown_channel_dropped(self):
        sim, net, muxes = make()
        muxes["A"].channel(9).send("B", Msg(1), size=0)
        sim.run()  # no receiver channel: silently dropped

    def test_batch_payload_unwrapped_per_channel(self):
        sim, net, muxes = make()
        got = []
        muxes["B"].channel(1).on(Msg, lambda m, src: got.append(m.n))
        muxes["A"].channel(1).send("B", Batch(items=[Msg(1), Msg(2)]), size=0)
        sim.run()
        assert got == [1, 2]

    def test_channel_instances_cached(self):
        _, _, muxes = make()
        assert muxes["A"].channel(5) is muxes["A"].channel(5)


class TestRequestReply:
    def test_roundtrip_scoped(self):
        sim, net, muxes = make()
        muxes["B"].channel(1).on_request_async(
            Req, lambda m, src, respond: respond(Rep(m.n + 1), 0)
        )
        muxes["B"].channel(2).on_request_async(
            Req, lambda m, src, respond: respond(Rep(m.n + 100), 0)
        )
        got = []
        muxes["A"].channel(1).request("B", Req(1), 0, on_reply=lambda r: got.append(r.n))
        muxes["A"].channel(2).request("B", Req(1), 0, on_reply=lambda r: got.append(r.n))
        sim.run(until=1.0)
        assert sorted(got) == [2, 101]

    def test_deferred_reply(self):
        sim, net, muxes = make()

        def handler(m, src, respond):
            sim.call_after(0.5, lambda: respond(Rep(99), 0))

        muxes["B"].channel(1).on_request_async(Req, handler)
        got = []
        muxes["A"].channel(1).request(
            "B", Req(0), 0, on_reply=lambda r: got.append(sim.now), timeout=5.0
        )
        sim.run(until=2.0)
        assert len(got) == 1 and got[0] > 0.5

    def test_unanswered_channel_triggers_retransmit_then_timeout(self):
        sim, net, muxes = make()
        timeouts = []
        muxes["A"].channel(7).request(
            "B", Req(0), 0, on_reply=lambda r: None,
            timeout=0.05, retries=2, on_timeout=lambda: timeouts.append(sim.now),
        )
        sim.run(until=2.0)
        assert len(timeouts) == 1

    def test_same_endpoint_plain_handlers_still_work(self):
        # A mux and plain typed handlers coexist on one endpoint (the
        # KV server registers client ops directly).
        sim, net, muxes = make()
        got = []
        muxes["B"].endpoint.on(Msg, lambda m, src: got.append(("plain", m.n)))
        muxes["B"].channel(1).on(Msg, lambda m, src: got.append(("chan", m.n)))
        muxes["A"].endpoint.send("B", Msg(1), size=0)
        muxes["A"].channel(1).send("B", Msg(2), size=0)
        sim.run()
        assert ("plain", 1) in got and ("chan", 2) in got
