"""Property-based tests (hypothesis) for token-scoped link cuts.

The network's blocking state is a multiset: each directed pair is cut
while *any* episode token claims it. We replay an arbitrary sequence of
partition / sever / flap-pulse / scoped-heal / heal-all operations
against both the real :class:`~repro.net.Network` and a brute-force
model (a plain ``dict[pair, set[token]]``) and require the connectivity
state to match exactly — in particular, a scoped heal must never
resurrect a link severed by a *different* still-active episode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import LinkSpec, build_network
from repro.sim import Simulator

HOSTS = ["A", "B", "C", "D"]
TOKENS = ["t0", "t1", "t2"]


def groups(draw):
    """Two disjoint, non-empty host groups."""
    split = draw(st.integers(min_value=1, max_value=len(HOSTS) - 1))
    perm = draw(st.permutations(HOSTS))
    return list(perm[:split]), list(perm[split:])


@st.composite
def operation(draw):
    kind = draw(st.sampled_from(
        ["partition", "sever", "flap-cut", "flap-heal", "heal", "heal-all"]
    ))
    if kind == "heal-all":
        return ("heal-all",)
    token = draw(st.sampled_from(TOKENS))
    if kind == "heal" or kind == "flap-heal":
        # A flap's "open" pulse is exactly a scoped heal of its token.
        return ("heal", token)
    a, b = groups(draw)
    return (kind, a, b, token)


class Model:
    """Brute force: pair -> set of claiming tokens."""

    def __init__(self):
        self.claims: dict[tuple[str, str], set[str]] = {}

    def cut(self, a: str, b: str, token: str) -> None:
        self.claims.setdefault((a, b), set()).add(token)

    def apply(self, op) -> None:
        if op[0] == "heal-all":
            self.claims.clear()
        elif op[0] == "heal":
            for pair in list(self.claims):
                self.claims[pair].discard(op[1])
                if not self.claims[pair]:
                    del self.claims[pair]
        elif op[0] == "sever":
            _, a, b, token = op
            for x in a:
                for y in b:
                    self.cut(x, y, token)
        else:  # partition or flap-cut (both symmetric)
            _, a, b, token = op
            for x in a:
                for y in b:
                    self.cut(x, y, token)
                    self.cut(y, x, token)

    def blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self.claims


@given(st.lists(operation(), max_size=40))
@settings(max_examples=300, deadline=None)
def test_connectivity_matches_brute_force_model(ops):
    sim = Simulator(seed=0)
    net = build_network(sim, HOSTS, LinkSpec(delay_s=0.001))
    model = Model()
    for op in ops:
        if op[0] in ("sever",):
            net.sever_group(op[1], op[2], op[3])
        elif op[0] in ("partition", "flap-cut"):
            net.partition(op[1], op[2], op[3])
        elif op[0] == "heal":
            net.heal(op[1])
        else:
            net.heal()
        model.apply(op)
        for src in HOSTS:
            for dst in HOSTS:
                if src != dst:
                    assert net.is_blocked(src, dst) == model.blocked(src, dst)


@given(st.data())
@settings(max_examples=150, deadline=None)
def test_scoped_heal_never_resurrects_other_episodes(data):
    """While episode t0 is still active, any sequence of *other*
    episodes' cuts and heals leaves every t0-severed link cut."""
    sim = Simulator(seed=0)
    net = build_network(sim, HOSTS, LinkSpec(delay_s=0.001))
    a, b = groups(data.draw)
    net.partition(a, b, "t0")
    severed = [(x, y) for x in a for y in b] + [(y, x) for x in a for y in b]
    others = data.draw(st.lists(operation(), max_size=20))
    for op in others:
        if op[0] == "heal-all" or (len(op) > 1 and op[1] == "t0") \
                or (len(op) > 3 and op[3] == "t0"):
            continue  # only *different* episodes act
        if op[0] == "sever":
            net.sever_group(op[1], op[2], op[3])
        elif op[0] in ("partition", "flap-cut"):
            net.partition(op[1], op[2], op[3])
        elif op[0] == "heal":
            net.heal(op[1])
        for src, dst in severed:
            assert net.is_blocked(src, dst), (
                f"{op} resurrected {src}->{dst} severed by active t0")
    net.heal("t0")
