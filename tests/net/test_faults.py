"""Unit tests for the fault-injection scheduler (repro.net.faults)."""

import pytest

from repro.net import FaultSchedule, LinkSpec, build_network
from repro.sim import Simulator


def make_net(names=("A", "B", "C")):
    sim = Simulator(seed=0)
    net = build_network(sim, list(names), LinkSpec(delay_s=0.01))
    return sim, net


def collect_hooks(sched, sim):
    events = []
    sched.on_fault(lambda kind, arg: events.append((sim.now, kind, arg)))
    return events


class TestHookDispatch:
    def test_every_kind_reaches_hooks(self):
        """All fault kinds — including partition/heal — flow through
        the hook path, not just crash/recover."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = collect_hooks(sched, sim)

        sched.crash_at(1.0, "B")
        sched.recover_at(2.0, "B")
        sched.partition_at(3.0, ["A"], ["B", "C"])
        sched.heal_at(4.0)
        sched.loss_burst_at(5.0, 1.0, 0.5, dup_prob=0.1)
        sched.custom_at(7.0, "slow-disk", ("A", 10.0))
        sim.run()

        assert events == [
            (1.0, "crash", "B"),
            (2.0, "recover", "B"),
            (3.0, "partition", (("A",), ("B", "C"))),
            (4.0, "heal", None),
            (5.0, "loss-burst", (0.5, 0.1)),
            (6.0, "loss-heal", None),
            (7.0, "slow-disk", ("A", 10.0)),
        ]
        assert sched.fired == events

    def test_wipe_and_rejoin_reach_hooks_and_network(self):
        """wipe/rejoin act like crash/recover at the network layer —
        the disk-loss semantics live in the hook consumer."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = collect_hooks(sched, sim)
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))

        sched.wipe_at(1.0, "B")
        sched.rejoin_at(2.0, "B")
        sim.call_at(1.5, lambda: net.send("A", "B", "while-wiped", size=0))
        sim.call_at(2.5, lambda: net.send("A", "B", "after-rejoin", size=0))
        sim.run()

        assert events == [(1.0, "wipe", "B"), (2.0, "rejoin", "B")]
        assert got == ["after-rejoin"]
        assert net.hosts["B"].up

    def test_partition_at_cuts_and_heal_restores(self):
        """partition_at / heal_at act on the network, not only on hooks."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append((sim.now, env.payload)))

        sched.partition_at(1.0, ["A"], ["B", "C"])
        sched.heal_at(2.0)
        sim.call_at(1.5, lambda: net.send("A", "B", "cut", size=0))
        sim.call_at(2.5, lambda: net.send("A", "B", "healed", size=0))
        sim.run()

        assert [p for _, p in got] == ["healed"]

    def test_custom_kind_rejects_builtin_kinds(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        with pytest.raises(ValueError):
            sched.custom_at(1.0, "partition", (("A",), ("B",)))

    def test_unknown_kind_without_hooks_raises(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        sched.custom_at(1.0, "quake", None)
        with pytest.raises(ValueError):
            sim.run()


class TestOrdering:
    def test_same_timestamp_fires_in_arming_order(self):
        """The simulator breaks timestamp ties by insertion order, so a
        schedule with coincident events is still deterministic."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = collect_hooks(sched, sim)

        sched.crash_at(5.0, "B")
        sched.heal_at(5.0)
        sched.recover_at(5.0, "B")
        sched.crash_at(5.0, "C")
        sim.run()

        assert [(k, a) for _, k, a in [(t, k, a) for t, k, a in events]] == [
            ("crash", "B"), ("heal", None), ("recover", "B"), ("crash", "C"),
        ]
        assert all(t == 5.0 for t, _, _ in events)
        assert net.hosts["B"].up
        assert not net.hosts["C"].up


class TestCrashWhilePartitioned:
    def test_crash_inside_partition_survives_heal(self):
        """heal() repairs cuts only: a host crashed during the partition
        stays down after the heal until its own recovery fires."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append((sim.now, env.payload)))

        sched.partition_at(1.0, ["A"], ["B", "C"])
        sched.crash_at(1.5, "B")        # crash while unreachable from A
        sched.heal_at(2.0)
        sched.recover_at(3.0, "B")
        # After heal but before recovery: crashed host drops traffic.
        sim.call_at(2.5, lambda: net.send("A", "B", "still-down", size=0))
        # After recovery: traffic flows again.
        sim.call_at(3.5, lambda: net.send("A", "B", "back", size=0))
        sim.run()

        assert [p for _, p in got] == ["back"]
        assert net.hosts["B"].up


class TestImpairment:
    def test_loss_burst_window(self):
        """Total loss inside the burst, normal delivery outside it."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))

        sched.loss_burst_at(1.0, 1.0, 1.0)  # loss_prob = 1.0 for [1, 2)
        sim.call_at(0.5, lambda: net.send("A", "B", "before", size=0))
        sim.call_at(1.5, lambda: net.send("A", "B", "during", size=0))
        sim.call_at(2.5, lambda: net.send("A", "B", "after", size=0))
        sim.run()

        assert got == ["before", "after"]
        assert net.extra_loss_prob == 0.0

    def test_impairment_validation(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.set_impairment(1.5)
        with pytest.raises(ValueError):
            net.set_impairment(0.1, dup_prob=-0.2)
