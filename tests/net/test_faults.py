"""Unit tests for the fault-injection scheduler (repro.net.faults)."""

import pytest

from repro.net import FaultSchedule, LinkSpec, build_network
from repro.sim import Simulator


def make_net(names=("A", "B", "C")):
    sim = Simulator(seed=0)
    net = build_network(sim, list(names), LinkSpec(delay_s=0.01))
    return sim, net


def collect_hooks(sched, sim):
    events = []
    sched.on_fault(lambda kind, arg: events.append((sim.now, kind, arg)))
    return events


class TestHookDispatch:
    def test_every_kind_reaches_hooks(self):
        """All fault kinds — including partition/heal — flow through
        the hook path, not just crash/recover."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = collect_hooks(sched, sim)

        sched.crash_at(1.0, "B")
        sched.recover_at(2.0, "B")
        sched.partition_at(3.0, ["A"], ["B", "C"])
        sched.heal_at(4.0)
        sched.loss_burst_at(5.0, 1.0, 0.5, dup_prob=0.1)
        sched.custom_at(7.0, "slow-disk", ("A", 10.0))
        sim.run()

        assert events == [
            (1.0, "crash", "B"),
            (2.0, "recover", "B"),
            (3.0, "partition", (("A",), ("B", "C"))),
            (4.0, "heal", None),
            (5.0, "loss-burst", (0.5, 0.1)),
            (6.0, "loss-heal", None),
            (7.0, "slow-disk", ("A", 10.0)),
        ]
        assert sched.fired == events

    def test_wipe_and_rejoin_reach_hooks_and_network(self):
        """wipe/rejoin act like crash/recover at the network layer —
        the disk-loss semantics live in the hook consumer."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = collect_hooks(sched, sim)
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))

        sched.wipe_at(1.0, "B")
        sched.rejoin_at(2.0, "B")
        sim.call_at(1.5, lambda: net.send("A", "B", "while-wiped", size=0))
        sim.call_at(2.5, lambda: net.send("A", "B", "after-rejoin", size=0))
        sim.run()

        assert events == [(1.0, "wipe", "B"), (2.0, "rejoin", "B")]
        assert got == ["after-rejoin"]
        assert net.hosts["B"].up

    def test_partition_at_cuts_and_heal_restores(self):
        """partition_at / heal_at act on the network, not only on hooks."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append((sim.now, env.payload)))

        sched.partition_at(1.0, ["A"], ["B", "C"])
        sched.heal_at(2.0)
        sim.call_at(1.5, lambda: net.send("A", "B", "cut", size=0))
        sim.call_at(2.5, lambda: net.send("A", "B", "healed", size=0))
        sim.run()

        assert [p for _, p in got] == ["healed"]

    def test_custom_kind_rejects_builtin_kinds(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        with pytest.raises(ValueError):
            sched.custom_at(1.0, "partition", (("A",), ("B",)))

    def test_unknown_kind_without_hooks_raises(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        sched.custom_at(1.0, "quake", None)
        with pytest.raises(ValueError):
            sim.run()


class TestOrdering:
    def test_same_timestamp_fires_in_arming_order(self):
        """The simulator breaks timestamp ties by insertion order, so a
        schedule with coincident events is still deterministic."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = collect_hooks(sched, sim)

        sched.crash_at(5.0, "B")
        sched.heal_at(5.0)
        sched.recover_at(5.0, "B")
        sched.crash_at(5.0, "C")
        sim.run()

        assert [(k, a) for _, k, a in [(t, k, a) for t, k, a in events]] == [
            ("crash", "B"), ("heal", None), ("recover", "B"), ("crash", "C"),
        ]
        assert all(t == 5.0 for t, _, _ in events)
        assert net.hosts["B"].up
        assert not net.hosts["C"].up


class TestCrashWhilePartitioned:
    def test_crash_inside_partition_survives_heal(self):
        """heal() repairs cuts only: a host crashed during the partition
        stays down after the heal until its own recovery fires."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append((sim.now, env.payload)))

        sched.partition_at(1.0, ["A"], ["B", "C"])
        sched.crash_at(1.5, "B")        # crash while unreachable from A
        sched.heal_at(2.0)
        sched.recover_at(3.0, "B")
        # After heal but before recovery: crashed host drops traffic.
        sim.call_at(2.5, lambda: net.send("A", "B", "still-down", size=0))
        # After recovery: traffic flows again.
        sim.call_at(3.5, lambda: net.send("A", "B", "back", size=0))
        sim.run()

        assert [p for _, p in got] == ["back"]
        assert net.hosts["B"].up


class TestScopedHeals:
    def test_scoped_heal_lifts_only_its_episode(self):
        """Two overlapping token-scoped partitions heal independently:
        ending one must not resurrect links the other still severs."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))
        net.set_handler("C", lambda env: got.append(env.payload))

        sched.partition_at(1.0, ["A"], ["B"], token="p1")
        sched.partition_at(1.2, ["A"], ["B", "C"], token="p2")
        sched.heal_at(2.0, token="p2")   # p1 still severs A<->B
        sched.heal_at(3.0, token="p1")
        # After p2's heal: A->C flows again, A->B must stay cut.
        sim.call_at(2.5, lambda: net.send("A", "C", "c-open", size=0))
        sim.call_at(2.5, lambda: net.send("A", "B", "b-cut", size=0))
        # After p1's heal too: A->B finally flows.
        sim.call_at(3.5, lambda: net.send("A", "B", "b-open", size=0))
        sim.run()

        assert got == ["c-open", "b-open"]

    def test_argless_heal_is_heal_all(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))

        sched.partition_at(1.0, ["A"], ["B"], token="p1")
        sched.partition_at(1.0, ["C"], ["B"], token="p2")
        sched.heal_at(2.0)  # no token: every episode's cuts lift
        sim.call_at(2.5, lambda: net.send("A", "B", "from-a", size=0))
        sim.call_at(2.5, lambda: net.send("C", "B", "from-c", size=0))
        sim.run()

        assert sorted(got) == ["from-a", "from-c"]

    def test_scoped_hook_args_carry_token(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = collect_hooks(sched, sim)

        sched.partition_at(1.0, ["A"], ["B"], token="p1")
        sched.heal_at(2.0, token="p1")
        sim.run()

        assert events == [
            (1.0, "partition", (("A",), ("B",), "p1")),
            (2.0, "heal", "p1"),
        ]


class TestSever:
    def test_sever_is_one_way(self):
        """A severed direction drops; the reverse keeps flowing."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("A", lambda env: got.append(env.payload))
        net.set_handler("B", lambda env: got.append(env.payload))

        sched.sever_at(1.0, ["A"], ["B"], token="s1")
        sim.call_at(1.5, lambda: net.send("A", "B", "a-to-b", size=0))
        sim.call_at(1.5, lambda: net.send("B", "A", "b-to-a", size=0))
        sched.heal_at(2.0, token="s1")
        sim.call_at(2.5, lambda: net.send("A", "B", "healed", size=0))
        sim.run()

        assert got == ["b-to-a", "healed"]

    def test_sever_hook_shape(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = collect_hooks(sched, sim)
        sched.sever_at(1.0, ["A"], ["B", "C"], token="s1")
        sim.run()
        assert events == [(1.0, "sever", (("A",), ("B", "C"), "s1"))]


class TestFlap:
    def test_flap_toggles_and_finally_heals(self):
        """The cut alternates every half period and always ends healed,
        whatever phase the duration lands on."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))

        # period 1.0 => cut on [1.0, 1.5) and [2.0, 2.5), open between;
        # duration 2.2 ends mid-cut, so the trailing heal matters.
        sched.flap_at(1.0, 2.2, ["A"], ["B"], period=1.0, token="f1")
        sim.call_at(1.2, lambda: net.send("A", "B", "cut-1", size=0))
        sim.call_at(1.7, lambda: net.send("A", "B", "open-1", size=0))
        sim.call_at(2.2, lambda: net.send("A", "B", "cut-2", size=0))
        sim.call_at(3.5, lambda: net.send("A", "B", "after", size=0))
        sim.run()

        assert got == ["open-1", "after"]
        assert not net.is_blocked("A", "B")

    def test_flap_requires_token_and_positive_timing(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        with pytest.raises(ValueError):
            sched.flap_at(1.0, 2.0, ["A"], ["B"], period=1.0, token="")
        with pytest.raises(ValueError):
            sched.flap_at(1.0, 0.0, ["A"], ["B"], period=1.0, token="f")
        with pytest.raises(ValueError):
            sched.flap_at(1.0, 2.0, ["A"], ["B"], period=0.0, token="f")


class TestImpairment:
    def test_loss_burst_window(self):
        """Total loss inside the burst, normal delivery outside it."""
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))

        sched.loss_burst_at(1.0, 1.0, 1.0)  # loss_prob = 1.0 for [1, 2)
        sim.call_at(0.5, lambda: net.send("A", "B", "before", size=0))
        sim.call_at(1.5, lambda: net.send("A", "B", "during", size=0))
        sim.call_at(2.5, lambda: net.send("A", "B", "after", size=0))
        sim.run()

        assert got == ["before", "after"]
        assert net.extra_loss_prob == 0.0

    def test_impairment_validation(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.set_impairment(1.5)
        with pytest.raises(ValueError):
            net.set_impairment(0.1, dup_prob=-0.2)
