"""Unit tests for the simulated network."""

import pytest

from repro.net import (
    HEADER_BYTES,
    LAN,
    WAN,
    Envelope,
    FaultSchedule,
    LinkSpec,
    Network,
    build_network,
    lan_cluster,
    server_names,
    wan_cluster,
)
from repro.sim import Simulator, Tracer


def make_net(link=None, seed=0, names=("A", "B", "C")):
    sim = Simulator(seed=seed)
    net = build_network(sim, list(names), link or LinkSpec(delay_s=0.01))
    return sim, net


class TestLinkSpec:
    def test_serialization_time(self):
        spec = LinkSpec(bandwidth_bps=1e9)
        assert spec.serialization_time(125_000_000) == pytest.approx(1.0)

    def test_infinite_bandwidth(self):
        spec = LinkSpec(bandwidth_bps=float("inf"))
        assert spec.serialization_time(10**9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(delay_s=-1)
        with pytest.raises(ValueError):
            LinkSpec(jitter_s=0.2, delay_s=0.1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkSpec(loss_prob=1.5)

    def test_presets_match_paper(self):
        # §6.1: LAN 1 Gbps; WAN 500 Mbps, 50±10 ms one-way.
        assert LAN.bandwidth_bps == pytest.approx(1e9)
        assert WAN.bandwidth_bps == pytest.approx(500e6)
        assert WAN.delay_s == pytest.approx(0.050)
        assert WAN.jitter_s == pytest.approx(0.010)


class TestDelivery:
    def test_basic_delivery(self):
        sim, net = make_net()
        got = []
        net.set_handler("B", lambda env: got.append((sim.now, env.payload)))
        net.send("A", "B", "hello", size=0)
        sim.run()
        assert len(got) == 1
        t, payload = got[0]
        assert payload == "hello"
        # Header-only message at 1 Gbps: serialization negligible vs 10ms.
        assert t == pytest.approx(0.01, abs=1e-3)

    def test_size_drives_latency(self):
        spec = LinkSpec(delay_s=0.0, bandwidth_bps=8e6)  # 1 MB/s
        sim, net = make_net(spec)
        got = []
        net.set_handler("B", lambda env: got.append(sim.now))
        net.send("A", "B", "big", size=1_000_000 - HEADER_BYTES)
        sim.run()
        # Egress + ingress serialization of 1 MB at 1 MB/s each.
        assert got[0] == pytest.approx(2.0)

    def test_egress_is_shared_bottleneck(self):
        # One sender to three receivers: transmissions serialize at the
        # sender NIC — the leader bottleneck the paper relies on.
        spec = LinkSpec(delay_s=0.0, bandwidth_bps=8e6)
        sim, net = make_net(spec, names=("L", "F1", "F2", "F3"))
        got = {}
        for f in ("F1", "F2", "F3"):
            net.set_handler(f, lambda env, f=f: got.setdefault(f, sim.now))
        size = 1_000_000 - HEADER_BYTES
        for f in ("F1", "F2", "F3"):
            net.send("L", f, "x", size=size)
        sim.run()
        times = sorted(got.values())
        # Egress finishes at 1,2,3s; ingress adds 1s each (parallel NICs).
        assert times[0] == pytest.approx(2.0)
        assert times[1] == pytest.approx(3.0)
        assert times[2] == pytest.approx(4.0)

    def test_loopback_is_instant(self):
        sim, net = make_net()
        got = []
        net.set_handler("A", lambda env: got.append(sim.now))
        net.send("A", "A", "self", size=10**9)
        sim.run()
        assert got == [0.0]

    def test_fifo_between_same_pair(self):
        sim, net = make_net()
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))
        for i in range(5):
            net.send("A", "B", i, size=100)
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_negative_size_rejected(self):
        sim, net = make_net()
        with pytest.raises(ValueError):
            net.send("A", "B", "x", size=-1)

    def test_jitter_varies_delay_deterministically(self):
        spec = LinkSpec(delay_s=0.05, jitter_s=0.01, bandwidth_bps=float("inf"))
        times1 = self._run_jitter(spec, seed=1)
        times2 = self._run_jitter(spec, seed=1)
        times3 = self._run_jitter(spec, seed=2)
        assert times1 == times2  # deterministic
        assert times1 != times3  # seed-sensitive
        for t in times1:
            assert 0.04 <= t <= 0.06

    @staticmethod
    def _run_jitter(spec, seed):
        sim = Simulator(seed=seed)
        net = build_network(sim, ["A", "B"], spec)
        got = []
        net.set_handler("B", lambda env: got.append(sim.now))
        # Stagger sends so each message's delay is visible.
        for i in range(5):
            sim.call_at(float(i), lambda: net.send("A", "B", "x", size=0))
        sim.run()
        return [t - i for i, t in enumerate(got)]


class TestImpairments:
    def test_loss(self):
        spec = LinkSpec(delay_s=0.001, loss_prob=1.0)
        sim, net = make_net(spec)
        got = []
        net.set_handler("B", lambda env: got.append(env))
        net.send("A", "B", "x", size=0)
        sim.run()
        assert got == []
        assert net.messages_dropped == 1

    def test_duplication(self):
        spec = LinkSpec(delay_s=0.001, dup_prob=1.0)
        sim, net = make_net(spec)
        got = []
        net.set_handler("B", lambda env: got.append(env.dup))
        net.send("A", "B", "x", size=0)
        sim.run()
        assert len(got) == 2
        assert got.count(True) == 1

    def test_partial_loss_statistics(self):
        spec = LinkSpec(delay_s=0.001, loss_prob=0.5)
        sim, net = make_net(spec, seed=3)
        got = []
        net.set_handler("B", lambda env: got.append(env))
        for _ in range(400):
            net.send("A", "B", "x", size=0)
        sim.run()
        assert 120 < len(got) < 280  # ~200 expected


class TestFaults:
    def test_crashed_host_does_not_send(self):
        sim, net = make_net()
        got = []
        net.set_handler("B", lambda env: got.append(env))
        net.crash_host("A")
        net.send("A", "B", "x", size=0)
        sim.run()
        assert got == []

    def test_crashed_host_does_not_receive(self):
        sim, net = make_net()
        got = []
        net.set_handler("B", lambda env: got.append(env))
        net.crash_host("B")
        net.send("A", "B", "x", size=0)
        sim.run()
        assert got == []
        assert net.messages_dropped == 1

    def test_message_in_flight_to_crashing_host_dropped(self):
        sim, net = make_net()  # 10ms delay
        got = []
        net.set_handler("B", lambda env: got.append(env))
        net.send("A", "B", "x", size=0)
        sim.call_at(0.005, lambda: net.crash_host("B"))
        sim.run()
        assert got == []

    def test_recovery_restores_connectivity(self):
        sim, net = make_net()
        got = []
        net.set_handler("B", lambda env: got.append(env.payload))
        net.crash_host("B")
        net.send("A", "B", "lost", size=0)
        sim.call_at(1.0, lambda: net.recover_host("B"))
        sim.call_at(2.0, lambda: net.send("A", "B", "ok", size=0))
        sim.run()
        assert got == ["ok"]

    def test_partition_and_heal(self):
        sim, net = make_net()
        got = []
        net.set_handler("C", lambda env: got.append(env.payload))
        net.partition(["A"], ["C"])
        net.send("A", "C", "blocked", size=0)
        sim.call_at(1.0, lambda: net.heal())
        sim.call_at(2.0, lambda: net.send("A", "C", "through", size=0))
        sim.run()
        assert got == ["through"]

    def test_fault_schedule(self):
        sim, net = make_net()
        sched = FaultSchedule(sim, net)
        events = []
        sched.on_fault(lambda kind, host: events.append((sim.now, kind, host)))
        sched.crash_at(5.0, "B")
        sched.recover_at(9.0, "B")
        sim.run()
        assert events == [(5.0, "crash", "B"), (9.0, "recover", "B")]
        assert net.hosts["B"].up


class TestAccounting:
    def test_bytes_counted_with_header(self):
        sim, net = make_net()
        net.set_handler("B", lambda env: None)
        net.send("A", "B", "x", size=1000)
        sim.run()
        assert net.hosts["A"].bytes_sent == 1000 + HEADER_BYTES
        assert net.hosts["B"].bytes_received == 1000 + HEADER_BYTES
        assert net.total_bytes_sent() == 1000 + HEADER_BYTES

    def test_tracer_records_delivery(self):
        sim = Simulator()
        tracer = Tracer()
        net = build_network(sim, ["A", "B"], LinkSpec(delay_s=0.01), tracer)
        net.set_handler("B", lambda env: None)
        net.send("A", "B", "x", size=5)
        sim.run()
        assert any("deliver" in r.detail for r in tracer.filter("net"))


class TestTopology:
    def test_builders(self):
        sim = Simulator()
        lan = lan_cluster(sim, server_names(5))
        assert set(lan.hosts) == {"P1", "P2", "P3", "P4", "P5"}
        assert lan.default_link == LAN
        sim2 = Simulator()
        wan = wan_cluster(sim2, server_names(3))
        assert wan.default_link == WAN

    def test_duplicate_host_rejected(self):
        sim = Simulator()
        net = build_network(sim, ["A"], LAN)
        with pytest.raises(ValueError):
            net.add_host("A")
